// Package netpeer runs RIPPLE peers as real network servers: each peer
// listens on a TCP address, holds its zone, tuples, and links (neighbour
// addresses with their regions), and processes wire.Call messages by
// executing its slice of Algorithm 3 — forwarding sub-calls to neighbour
// servers over TCP and aggregating their replies. It turns the simulated
// library into a deployable system: the exact protocol the in-process
// engines model, over actual sockets.
//
// The RPC realisation folds the paper's three upstream flows (state to the
// parent, answers to the initiator, fast-mode convergecast) into the reply
// chain; contents and cost accounting are identical, and hop clocks carried
// on the messages reproduce the engine's latency model.
//
// Unlike the in-process engines, real links fail. Every outgoing RPC runs
// under dial/read/write deadlines and a bounded retry policy (exponential
// backoff with jitter); a link that stays unrecoverable does not fail the
// query — the caller records the lost restriction region and marks the reply
// partial, so the initiator learns exactly which part of the domain its
// answer may be missing instead of silently receiving a corrupted result.
package netpeer

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"ripple/internal/cache"
	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/geom"
	"ripple/internal/overlay"
	"ripple/internal/plan"
	"ripple/internal/sim"
	"ripple/internal/storage"
	"ripple/internal/trace"
	"ripple/internal/wire"
)

// LinkSpec is a neighbour as seen on the network: its address and the region
// of the domain this peer delegates to it. ID carries the neighbour's stable
// peer identity; it keys fault-injection decisions and failure logs (older
// configs without it fall back to the address).
type LinkSpec struct {
	ID     string
	Addr   string
	Region overlay.Region

	// Replicas lists the peers holding a replica of this neighbour's share,
	// in failover order: when the neighbour stays unreachable after retries,
	// the caller re-dispatches the sub-call to them (wire.Call.ActAs) before
	// declaring the region lost. Empty when replication is off.
	Replicas []ReplicaAddr
}

// ReplicaAddr names one replica holder of a peer's share.
type ReplicaAddr struct {
	ID   string
	Addr string
}

// key returns the link's stable identity for logging and fault decisions.
func (l LinkSpec) key() string {
	if l.ID != "" {
		return l.ID
	}
	return l.Addr
}

// Config describes one peer's share of the overlay.
type Config struct {
	ID     string
	Zone   overlay.Region
	Tuples []dataset.Tuple
	Links  []LinkSpec

	// Replicas are the shares of other peers this peer mirrors (zone
	// replication, DESIGN.md §13). A wire.Call with ActAs naming one of them
	// is served from that share — the peer acts as the dead primary.
	Replicas []ReplicaShare

	// Mirrors are the peers holding a replica of THIS peer's share. After
	// applying a mutation it owns, the peer fans the mutation out to them so
	// failover reads never serve pre-mutation data. Empty when replication is
	// off.
	Mirrors []ReplicaAddr
}

// ReplicaShare is a mirrored copy of another peer's share: everything needed
// to execute that peer's slice of Algorithm 3 on its behalf.
type ReplicaShare struct {
	ID     string
	Zone   overlay.Region
	Tuples []dataset.Tuple
	Links  []LinkSpec
}

// Server is a RIPPLE peer process.
type Server struct {
	mu        sync.RWMutex
	cfg       Config
	store     storage.Store            // the peer's own share behind Options.Storage
	repStores map[string]storage.Store // one per mirrored replica share
	cache     *cache.Cache             // result cache; nil when Options.CacheSize is zero
	codecs    map[string]wire.Codec
	opts      Options
	ins       instruments
	pool      *connPool // nil when Options.DisableConnPool
	mux       *muxTable // nil when Options.DisableMux
	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	once      sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// NewServer creates a peer server supporting the given query codecs, with
// default fault-tolerance options.
func NewServer(cfg Config, codecs ...wire.Codec) *Server {
	return NewServerOpts(cfg, Options{}, codecs...)
}

// NewServerOpts creates a peer server with explicit fault-tolerance options
// (zero fields fall back to the defaults).
func NewServerOpts(cfg Config, opts Options, codecs ...wire.Codec) *Server {
	m := make(map[string]wire.Codec, len(codecs))
	for _, c := range codecs {
		m[c.Name()] = c
	}
	s := &Server{
		cfg:    cfg,
		codecs: m,
		opts:   opts.withDefaults(),
		ins:    newInstruments(opts.Metrics),
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	s.store = storage.New(s.opts.Storage, cfg.Tuples)
	s.ins.setStorage(s.store.Stats())
	s.setReplicaStores(cfg.Replicas)
	s.cache = cache.New(cache.Options{
		MaxBytes: s.opts.CacheSize,
		TTL:      s.opts.CacheTTL,
		Metrics:  s.opts.Metrics,
	})
	if !s.opts.DisableConnPool {
		s.pool = newConnPool(s.opts.MaxIdleConnsPerPeer, s.opts.IdleConnTimeout, s.ins.evictions)
	}
	if !s.opts.DisableMux {
		s.mux = newMuxTable()
	}
	return s
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// until Close. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("netpeer %s: %w", s.cfg.ID, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// SetLinks installs the peer's neighbour table (done after all servers of a
// deployment have bound their addresses).
func (s *Server) SetLinks(links []LinkSpec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Links = links
}

// SetReplicas installs the mirrored shares this peer serves recovery
// dispatches from (done after all servers of a deployment have bound their
// addresses, like SetLinks). Each share gets its own store so a recovery
// dispatch runs with the same engine the dead primary would have used.
func (s *Server) SetReplicas(shares []ReplicaShare) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Replicas = shares
	s.setReplicaStores(shares)
}

// SetMirrors installs the addresses of the peers mirroring this peer's own
// share, the targets of mutation fan-out (done after all servers of a
// deployment have bound their addresses, like SetLinks).
func (s *Server) SetMirrors(mirrors []ReplicaAddr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Mirrors = mirrors
}

// StorageStats reports the live statistics of the peer's primary-share store:
// the engine kind, tuple count, and index shape. The same numbers back the
// ripple_storage_* gauges and the planner's local-work term.
func (s *Server) StorageStats() storage.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store.Stats()
}

// setReplicaStores rebuilds the per-share store table; callers hold s.mu (or
// are the constructor, before the server is shared).
func (s *Server) setReplicaStores(shares []ReplicaShare) {
	s.repStores = make(map[string]storage.Store, len(shares))
	for _, sh := range shares {
		s.repStores[sh.ID] = storage.New(s.opts.Storage, sh.Tuples)
	}
}

// Close stops serving: the listener is closed, every open connection is torn
// down, and Close blocks until all serving goroutines have exited. Safe to
// call more than once.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() {
		close(s.closed)
		err = s.ln.Close()
		if s.mux != nil {
			s.mux.close()
		}
		if s.pool != nil {
			s.pool.close()
		}
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.wg.Wait()
	})
	return err
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// acceptBackoff bounds the sleep after consecutive transient Accept
// failures: it starts small so one blip costs little, doubles so sustained
// fd exhaustion doesn't spin the loop, and caps so recovery is noticed
// within a fraction of a second.
const (
	acceptBackoffBase = 1 * time.Millisecond
	acceptBackoffMax  = 250 * time.Millisecond
)

// sleep pauses for d unless the server is closed first, reporting whether
// the full duration elapsed. Every wait inside the server goes through this
// so Close is never delayed by a backoff or an injected fault: a plain
// time.Sleep would hold the WaitGroup for the whole duration (goroleak).
func (s *Server) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.closed:
		return false
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	backoff := acceptBackoffBase
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				// Transient accept failure (e.g. fd exhaustion): capped
				// exponential backoff instead of spinning.
				if !s.sleep(backoff) {
					return
				}
				if backoff *= 2; backoff > acceptBackoffMax {
					backoff = acceptBackoffMax
				}
				continue
			}
		}
		backoff = acceptBackoffBase
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

// track registers a live connection so Close can tear it down; it refuses
// connections that race with shutdown.
func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	conn.Close()
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

// countingReader tracks whether any bytes of the current message arrived, to
// tell an idle connection apart from one stalled mid-frame.
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// serveConn handles one client connection. The first four bytes decide the
// protocol: the mux magic opens a multiplexed session (serveMux), anything
// else is the length prefix of a legacy sequential frame (the magic decodes
// as an over-limit length, so the two can never collide). The sniff runs
// under the same idle semantics as every later read: a connection idle
// before its first frame is re-armed, one stalled mid-prefix is dropped.
func (s *Server) serveConn(conn net.Conn) {
	cr := &countingReader{r: conn}
	var prefix [4]byte
	for {
		cr.n = 0
		if err := conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout)); err != nil {
			return // dead socket; an unarmed deadline would let the goroutine leak
		}
		if _, err := io.ReadFull(cr, prefix[:]); err != nil {
			if isTimeout(err) && cr.n == 0 {
				select {
				case <-s.closed:
					return
				default:
					continue // idle client: re-arm the deadline
				}
			}
			return // EOF, broken peer, or mid-frame stall
		}
		break
	}
	if wire.IsMuxPrefix(prefix) {
		s.serveMux(conn, cr)
		return
	}
	s.serveSequential(conn, cr, prefix, true)
}

// serveSequential runs the legacy one-call-at-a-time loop: read a call,
// process it, write the reply, repeat. havePrefix marks that the sniff
// already consumed the first frame's length prefix (still under the sniff's
// read deadline); it is false when a mux-capable client negotiated down to
// this protocol and the next frame starts clean. Each message is read under
// a deadline: a connection merely idle between messages is re-armed (unless
// the server is shutting down), while one that stalls in the middle of a
// frame — a hung or byte-dripping client — is dropped, so serving goroutines
// cannot leak past Close. An oversized length prefix is answered with the
// typed frame-size error before the connection is dropped (the frame body
// cannot be resynchronised).
func (s *Server) serveSequential(conn net.Conn, cr *countingReader, prefix [4]byte, havePrefix bool) {
	for {
		var call wire.Call
		var err error
		if havePrefix {
			havePrefix = false
			err = wire.ReadMessageBody(cr, prefix, &call)
		} else {
			cr.n = 0
			if derr := conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout)); derr != nil {
				return
			}
			err = wire.ReadMessage(cr, &call)
		}
		if err != nil {
			if isTimeout(err) && cr.n == 0 {
				select {
				case <-s.closed:
					return
				default:
					continue // idle client: re-arm the deadline
				}
			}
			var fse *wire.FrameSizeError
			if errors.As(err, &fse) {
				s.writeReply(conn, &wire.Reply{Error: fse.Error()})
			}
			return // EOF, broken peer, oversized frame, or mid-frame stall
		}
		if err := conn.SetReadDeadline(time.Time{}); err != nil {
			return
		}
		if !s.writeReply(conn, s.safeProcess(&call)) {
			return
		}
	}
}

// writeReply sends one sequential-protocol reply under the write deadline,
// reporting whether the connection is still usable.
func (s *Server) writeReply(conn net.Conn, reply *wire.Reply) bool {
	if err := conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout)); err != nil {
		return false
	}
	if err := wire.WriteMessage(conn, reply); err != nil {
		return false
	}
	return conn.SetWriteDeadline(time.Time{}) == nil
}

// safeProcess shields the server from malformed calls (wrong dimensionality,
// bad payloads) and processor panics. Failures are logged server-side and
// reported to the caller as wire.Reply.Error, so a crashed peer is
// distinguishable from one that simply holds no qualifying tuples.
func (s *Server) safeProcess(call *wire.Call) (reply *wire.Reply) {
	defer func() {
		if r := recover(); r != nil {
			s.opts.Logf("netpeer %s: panic processing %q call: %v", s.cfg.ID, call.QueryType, r)
			reply = &wire.Reply{Error: fmt.Sprintf("peer %s: panic: %v", s.cfg.ID, r)}
		}
	}()
	reply, err := s.process(call)
	if err != nil {
		s.opts.Logf("netpeer %s: failed %q call: %v", s.cfg.ID, call.QueryType, err)
		return &wire.Reply{Error: err.Error()}
	}
	return reply
}

// node adapts the peer's local share to the engine's Node interface. One
// node instance lives for exactly one call, which is what lets it cache the
// per-query score index (overlay.ScoreIndexer): within a call every
// processor callback sees the same scoring key.
type node struct {
	cfg *Config
	st  storage.Store
	ix  *overlay.Index
}

func (n *node) ID() string              { return n.cfg.ID }
func (n *node) Zone() overlay.Region    { return n.cfg.Zone }
func (n *node) Links() []overlay.Link   { return nil } // links live in LinkSpec form
func (n *node) Tuples() []dataset.Tuple { return n.cfg.Tuples }

// Store implements storage.Provider: the share's store, built once per server
// (or per installed replica share), not per call.
func (n *node) Store() storage.Store { return n.st }

// ScoreIndex implements overlay.ScoreIndexer: built on first use, reused by
// every later callback of the same call. The index is a sorted view over the
// share's tuples, not a second copy (the share is immutable for the call).
func (n *node) ScoreIndex(key func(geom.Point) float64) *overlay.Index {
	if n.ix == nil {
		n.ix = overlay.IndexView(n.cfg.Tuples, key)
	}
	return n.ix
}

// process dispatches one delivery: mutation and invalidation ops go to the
// wire-level data-mutation path (mutate.go), queries to processQuery — the
// latter through the result cache when the call is an initiator query this
// peer can answer from a prior identical one.
func (s *Server) process(call *wire.Call) (*wire.Reply, error) {
	switch call.Op {
	case "":
		// Query call.
	case wire.OpInsert, wire.OpDelete:
		return s.processMutation(call)
	case wire.OpInvalidate:
		return s.processInvalidate(call)
	default:
		return nil, fmt.Errorf("netpeer: unknown op %q", call.Op)
	}
	// A root query is one this peer initiates a propagation for (no inherited
	// global state, not a recovery dispatch). The planner resolves its ripple
	// parameter before anything reads it — the cache identity below includes
	// r, so a planned query shares cache entries with the static run it
	// selects.
	rootQuery := call.ActAs == "" && len(call.Global) == 0
	var planned *plan.Decision
	var pq plan.Query
	planning := rootQuery && s.opts.Planner != nil
	if planning {
		pq = s.planQuery(call)
		if call.R == plan.RAuto {
			dec := s.opts.Planner.Choose(pq)
			planned, call.R = &dec, dec.R
		}
	}
	if rootQuery && call.R < 0 {
		call.R = 0 // RAuto without a planner degrades to fast
	}
	// Only initiator calls consult the cache: sub-calls carry the parent's
	// encoded global state (so their answers depend on traversal position,
	// not just the query), recovery dispatches answer for another peer, and
	// traced runs exist to observe propagation. Cache identity includes r —
	// the radius shapes the candidate set the query returns — and excludes
	// only the initiator peer, which this per-server cache fixes anyway.
	initiator := rootQuery && !call.Traced
	if s.cache == nil || !initiator {
		reply, err := s.processQuery(call)
		if planning {
			reply, err = s.finishPlan(pq, planned, call, reply, err)
		}
		return reply, err
	}
	s.mu.RLock()
	dims := regionDims(s.cfg.Zone)
	s.mu.RUnlock()
	key := cache.Key(call.QueryType, call.Params, dims, call.R, call.Scope)
	if val, ok := s.cache.Get(key); ok {
		if ans, err := cache.DecodeAnswers(val); err == nil {
			reply := &wire.Reply{Answers: ans, CacheHit: true}
			if planned != nil {
				reply.Plan, reply.PlanR = planned.String(), call.R
			}
			return reply, nil
		}
	}
	gen := s.cache.Begin()
	reply, err := s.processQuery(call)
	if planning {
		reply, err = s.finishPlan(pq, planned, call, reply, err)
	}
	if err == nil && reply.Error == "" && !reply.Partial {
		s.cache.Put(key, cache.EncodeAnswers(reply.Answers), dims, call.Scope, gen)
	}
	return reply, err
}

// planQuery describes a root query call to the planner: family and result
// size from the decoded processor's hints, dimensionality and link degree
// from this peer's share, local work from its store statistics.
func (s *Server) planQuery(call *wire.Call) plan.Query {
	s.mu.RLock()
	cfg := s.cfg
	st := s.store
	s.mu.RUnlock()
	q := plan.Query{Family: call.QueryType, Dims: regionDims(cfg.Zone), Degree: len(cfg.Links), Local: st.Stats()}
	if codec := s.codecs[call.QueryType]; codec != nil {
		if proc, err := codec.NewProcessor(call.Params); err == nil {
			if h, ok := proc.(plan.Hinter); ok {
				hints := h.PlanHints()
				q.Family, q.K = hints.Family, hints.K
			}
		}
	}
	return q
}

// finishPlan closes the planner loop on a completed root query: it feeds the
// observed cost back to the model and stamps the decision onto the reply (and
// onto the root span of a traced run, mirroring the in-process engines).
// Failed queries teach the model nothing — their counters describe an
// interrupted propagation, not the mode's cost.
func (s *Server) finishPlan(pq plan.Query, planned *plan.Decision, call *wire.Call, reply *wire.Reply, err error) (*wire.Reply, error) {
	if err != nil || reply == nil || reply.Error != "" {
		return reply, err
	}
	if !reply.CacheHit {
		s.opts.Planner.Observe(pq, call.R, reply.Completion, reply.QueryMsgs+reply.StateMsgs)
	}
	if planned != nil {
		reply.Plan, reply.PlanR = planned.String(), call.R
		if call.Traced {
			for i := range reply.Spans {
				if reply.Spans[i].ID == call.SpanID {
					reply.Spans[i].Plan = planned.String()
				}
			}
		}
	}
	return reply, err
}

// regionDims reports the dimensionality of a region's boxes (0 when empty).
func regionDims(r overlay.Region) int {
	if len(r.Boxes) == 0 {
		return 0
	}
	return len(r.Boxes[0].Lo)
}

// processQuery executes this peer's slice of Algorithm 3 for one delivery. A
// call carrying ActAs is a recovery dispatch: the peer serves it from the
// named dead primary's mirrored share, so everything below — links followed,
// zone answered for, the identity on replies and spans — is the primary's,
// while the transport identity (fault decisions, logs) stays this peer's own.
func (s *Server) processQuery(call *wire.Call) (*wire.Reply, error) {
	s.mu.RLock()
	cfg := s.cfg
	st := s.store
	s.mu.RUnlock()

	if call.ActAs != "" && call.ActAs != cfg.ID {
		share := findShare(cfg.Replicas, call.ActAs)
		if share == nil {
			return nil, fmt.Errorf("netpeer %s: no replica share for peer %q", cfg.ID, call.ActAs)
		}
		cfg = Config{ID: share.ID, Zone: share.Zone, Tuples: share.Tuples, Links: share.Links}
		s.mu.RLock()
		st = s.repStores[share.ID]
		s.mu.RUnlock()
		if st == nil { // share installed without SetReplicas (hand-built Config)
			st = storage.New(s.opts.Storage, share.Tuples)
		}
	}

	codec := s.codecs[call.QueryType]
	if codec == nil {
		return nil, fmt.Errorf("netpeer %s: unknown query type %q", cfg.ID, call.QueryType)
	}
	proc, err := codec.NewProcessor(call.Params)
	if err != nil {
		return nil, err
	}
	var global core.State
	if len(call.Global) == 0 {
		global = proc.InitialState() // the query's own neutral state
	} else {
		global, err = codec.DecodeState(call.Global)
		if err != nil {
			return nil, err
		}
	}

	w := &node{cfg: &cfg, st: st}
	// Scoped queries see the share through the restriction lens: the
	// processor reads only in-scope tuples, and overlay.Restricted hides the
	// store and score index so every runtime and storage engine falls back to
	// the same flat scan over the filtered share — scoped answers stay
	// byte-identical everywhere. An empty scope is the identity.
	pw := overlay.Restricted(w, call.Scope)
	local := proc.LocalState(pw, global)
	wGlobal := proc.GlobalState(pw, global, local)

	reply := &wire.Reply{QueryMsgs: 1, Peers: []string{cfg.ID}}
	tr := newTracer(call)

	if call.R > 0 {
		// Slow phase: one link at a time in priority order, folding each
		// link's states back in before deciding the next.
		links := sortLinks(cfg.Links, proc, pw)
		cursor := call.Hops
		contacted := 0
		for _, l := range links {
			sub := l.Region.Intersect(call.Restrict)
			if sub.IsEmpty() || !proc.LinkRelevant(pw, sub, wGlobal) {
				continue
			}
			childID := tr.child(l.key())
			contacted++
			encGlobal, err := codec.EncodeState(wGlobal)
			if err != nil {
				return nil, err
			}
			childCall := &wire.Call{
				QueryType: call.QueryType,
				Params:    call.Params,
				Global:    encGlobal,
				Restrict:  sub,
				Scope:     call.Scope,
				R:         call.R - 1,
				Hops:      cursor + 1,
			}
			tr.childContext(childCall, childID)
			childReply, retries, err := s.callPeer(l, childCall)
			reply.Retries += retries
			if err != nil {
				// Lost link: fail over to the neighbour's zone replicas; only
				// when none can serve the region does the loss go on record.
				s.opts.Logf("netpeer %s: lost slow link to %s after %d retries: %v",
					cfg.ID, l.key(), retries, err)
				tr.lost(childID, l.key(), sub, call.R-1, cursor+1, retries, err)
				s.ins.lostLinks.Inc()
				childReply = s.failover(l, childCall, reply, tr, childID, call.R-1, cursor+1)
				if childReply == nil {
					reply.RecordLostLink(sub, isTimeout(err))
					s.ins.unrecoverable.Inc()
					continue
				}
			} else {
				tr.absorb(childID, childReply.Spans, retries)
			}
			states := []core.State{local}
			for _, sb := range childReply.States {
				st, err := codec.DecodeState(sb)
				if err != nil {
					return nil, err
				}
				states = append(states, st)
				reply.StateMsgs++
				reply.TuplesSent += proc.StateTuples(st)
			}
			local = proc.MergeStates(pw, states)
			wGlobal = proc.GlobalState(pw, global, local)
			cursor = childReply.Completion
			absorbChild(reply, childReply)
		}
		s.ins.fanout.Observe(float64(contacted))
		own := finishReply(reply, codec, proc, pw, local, cursor)
		tr.finish(reply, cfg.ID, proc.StateTuples(local), own)
		return reply, nil
	}

	// Fast phase: all relevant links at once, children called concurrently;
	// their replies are the convergecast.
	type out struct {
		reply   *wire.Reply
		link    LinkSpec
		sub     overlay.Region
		call    *wire.Call
		spanID  uint64
		retries int
		err     error
	}
	var calls []chan out
	encGlobal, err := codec.EncodeState(wGlobal)
	if err != nil {
		return nil, err
	}
	for _, l := range cfg.Links {
		sub := l.Region.Intersect(call.Restrict)
		if sub.IsEmpty() || !proc.LinkRelevant(pw, sub, wGlobal) {
			continue
		}
		childID := tr.child(l.key())
		childCall := &wire.Call{
			QueryType: call.QueryType,
			Params:    call.Params,
			Global:    encGlobal,
			Restrict:  sub,
			Scope:     call.Scope,
			R:         0,
			Hops:      call.Hops + 1,
		}
		tr.childContext(childCall, childID)
		ch := make(chan out, 1)
		calls = append(calls, ch)
		go func(l LinkSpec, sub overlay.Region, childCall *wire.Call, childID uint64) {
			r, retries, err := s.callPeer(l, childCall)
			ch <- out{reply: r, link: l, sub: sub, call: childCall, spanID: childID, retries: retries, err: err}
		}(l, sub, childCall, childID)
	}
	s.ins.fanout.Observe(float64(len(calls)))
	completion := call.Hops
	var childStates [][]byte
	for _, ch := range calls {
		o := <-ch
		reply.Retries += o.retries
		if o.err != nil {
			// Errored fast subtree: never skipped silently — it fails over to
			// the neighbour's replicas, and an unrecoverable region is
			// counted, recorded, and marks the reply partial.
			s.opts.Logf("netpeer %s: lost fast link to %s after %d retries: %v",
				cfg.ID, o.link.key(), o.retries, o.err)
			tr.lost(o.spanID, o.link.key(), o.sub, 0, call.Hops+1, o.retries, o.err)
			s.ins.lostLinks.Inc()
			o.reply = s.failover(o.link, o.call, reply, tr, o.spanID, 0, call.Hops+1)
			if o.reply == nil {
				reply.RecordLostLink(o.sub, isTimeout(o.err))
				s.ins.unrecoverable.Inc()
				continue
			}
		} else {
			tr.absorb(o.spanID, o.reply.Spans, o.retries)
		}
		childStates = append(childStates, o.reply.States...)
		if o.reply.Completion > completion {
			completion = o.reply.Completion
		}
		absorbChild(reply, o.reply)
	}
	own := finishReply(reply, codec, proc, pw, local, completion)
	tr.finish(reply, cfg.ID, proc.StateTuples(local), own)
	reply.States = append(reply.States, childStates...)
	return reply, nil
}

// findShare returns the mirrored share for peer id, or nil when this peer
// holds no replica of it.
func findShare(shares []ReplicaShare, id string) *ReplicaShare {
	for i := range shares {
		if shares[i].ID == id {
			return &shares[i]
		}
	}
	return nil
}

// failover re-dispatches a lost sub-call to the dead neighbour's zone
// replicas in placement order, asking each to act as the dead primary
// (wire.Call.ActAs) until one serves the region or the recovery budget runs
// out. It returns the recovered child reply, or nil when every replica failed
// too — only then does the region belong in FailedRegions. Span IDs for
// failover dispatches derive from the failed primary span, not the parent's
// traversal counter, so the three runtimes name recovered subtrees
// identically regardless of dispatch order.
func (s *Server) failover(l LinkSpec, childCall *wire.Call, reply *wire.Reply, tr *tracer, primarySpan uint64, childR, arrive int) *wire.Reply {
	if len(l.Replicas) == 0 {
		return nil
	}
	start := time.Now()
	for n, rep := range l.Replicas {
		if s.opts.RecoveryBudget > 0 && time.Since(start) > s.opts.RecoveryBudget {
			s.opts.Logf("netpeer %s: recovery budget exhausted failing over %s (%d replicas untried)",
				s.cfg.ID, l.key(), len(l.Replicas)-n)
			break
		}
		repCall := *childCall
		repCall.ActAs = l.key()
		repID := trace.ChildID(primarySpan, rep.ID, n+1)
		tr.childContext(&repCall, repID)
		reply.Failovers++
		s.ins.failovers.Inc()
		repLink := LinkSpec{ID: rep.ID, Addr: rep.Addr, Region: l.Region}
		childReply, retries, err := s.callPeer(repLink, &repCall)
		reply.Retries += retries
		if err != nil {
			s.opts.Logf("netpeer %s: replica %s could not act for %s after %d retries: %v",
				s.cfg.ID, rep.ID, l.key(), retries, err)
			tr.lostVia(repID, l.key(), rep.ID, childCall.Restrict, childR, arrive, retries, err)
			continue
		}
		tr.absorbRecovered(repID, childReply.Spans, retries, rep.ID)
		reply.Recovered++
		s.ins.recovered.Inc()
		s.ins.recoverySeconds.Observe(time.Since(start).Seconds())
		return childReply
	}
	return nil
}

// finishReply attaches this peer's own state, answer and completion time,
// returning the number of answer tuples this peer contributed itself.
func finishReply(reply *wire.Reply, codec wire.Codec, proc core.Processor, w overlay.Node, local core.State, completion int) int {
	enc, err := codec.EncodeState(local)
	if err == nil {
		reply.States = append([][]byte{enc}, reply.States...)
	}
	a := proc.LocalAnswer(w, local)
	if len(a) > 0 {
		reply.Answers = append(a, reply.Answers...)
		reply.TuplesSent += len(a)
	}
	reply.Completion = completion
	reply.FailedRegions = overlay.CanonicalRegions(reply.FailedRegions)
	return len(a)
}

// absorbChild folds a child subtree's answers, counters and fault accounting
// into the reply.
func absorbChild(reply, child *wire.Reply) {
	reply.Answers = append(reply.Answers, child.Answers...)
	reply.QueryMsgs += child.QueryMsgs
	reply.StateMsgs += child.StateMsgs
	reply.TuplesSent += child.TuplesSent
	reply.Peers = append(reply.Peers, child.Peers...)
	reply.MergeFaults(child)
}

// callPeer performs one RPC with bounded retries. Transport failures (dial
// refusals, deadlines, injected drops) are retried under the backoff policy;
// a RemoteError — the peer itself reporting a processing crash — is not,
// since re-sending the same call would fail the same way. It returns the
// reply, the number of retry attempts spent, and the final error if the link
// was unrecoverable.
func (s *Server) callPeer(to LinkSpec, call *wire.Call) (*wire.Reply, int, error) {
	var lastErr error
	retries := 0
	for attempt := 0; attempt <= s.opts.Retry.MaxRetries; attempt++ {
		if attempt > 0 {
			retries++
			s.ins.retries.Inc()
			s.ins.backoffs.Inc()
			u := faults.Uniform01(s.opts.Faults.Config().Seed,
				s.cfg.ID, to.key(), "backoff", strconv.Itoa(attempt))
			if !s.sleep(s.opts.Retry.Backoff(attempt, u)) {
				return nil, retries, lastErr
			}
		}
		reply, err := s.callOnce(to, call, attempt)
		if err == nil {
			return reply, retries, nil
		}
		if isTimeout(err) {
			s.ins.deadlines.Inc()
		}
		lastErr = err
		if _, fatal := err.(*RemoteError); fatal {
			break
		}
		select {
		case <-s.closed:
			return nil, retries, lastErr
		default:
		}
	}
	return nil, retries, lastErr
}

// callOnce performs a single RPC attempt — over a pooled connection when one
// is warm — under the configured deadlines, consulting the fault injector.
func (s *Server) callOnce(to LinkSpec, call *wire.Call, attempt int) (*wire.Reply, error) {
	crashed := false
	switch s.opts.Faults.Decide(s.cfg.ID, to.key(), attempt) {
	case faults.Drop:
		return nil, errInjectedDrop
	case faults.Crash:
		crashed = true // perform the RPC (the work happens), lose the reply
	case faults.Delay:
		if !s.sleep(s.opts.Faults.Config().Delay) {
			return nil, errMuxClosed
		}
	}
	start := time.Now()
	defer func() { s.ins.rpcSeconds.Observe(time.Since(start).Seconds()) }()
	reply, err := s.exchange(to.Addr, call)
	if err != nil {
		return nil, err
	}
	if crashed {
		return nil, errInjectedCrash
	}
	if reply.Error != "" {
		return nil, replyErr(to.key(), reply)
	}
	return reply, nil
}

// exchange performs one request/reply. With multiplexing enabled (the
// default) the call rides the shared mux connection to addr as one stream;
// remotes that negotiated down — or predate the mux protocol entirely —
// fall through to the legacy pooled path. On that path a warm pooled
// connection is preferred over a fresh dial, and a connection that fails
// mid-RPC with a non-timeout error is treated as stale — the remote
// restarted while it was parked — and replaced by a fresh dial within the
// same attempt, so pooling never costs a retry the fresh-dial path would
// not have spent. A timeout is surfaced to the retry policy instead: the
// peer is slow, not the connection stale. Healthy connections are re-parked
// after the reply.
//
//ripplevet:transport
func (s *Server) exchange(addr string, call *wire.Call) (*wire.Reply, error) {
	if s.mux != nil {
		mc, legacy, err := s.muxFor(addr)
		if err != nil {
			return nil, err
		}
		if !legacy {
			s.ins.muxStreams.Inc()
			return mc.call(call, s.opts.CallTimeout)
		}
	}
	if s.pool != nil {
		if conn := s.pool.get(addr); conn != nil {
			s.ins.connReuses.Inc()
			reply, err := roundTrip(conn, call, s.opts.CallTimeout)
			if err == nil {
				s.pool.put(addr, conn)
				return reply, nil
			}
			conn.Close()
			if isTimeout(err) {
				return nil, err
			}
			s.ins.staleConns.Inc()
		}
	}
	s.ins.dials.Inc()
	conn, err := net.DialTimeout("tcp", addr, s.opts.DialTimeout)
	if err != nil {
		s.ins.dialFailures.Inc()
		return nil, err
	}
	reply, err := roundTrip(conn, call, s.opts.CallTimeout)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if s.pool != nil {
		s.pool.put(addr, conn)
	} else {
		if err := conn.Close(); err != nil {
			s.opts.Logf("netpeer %s: closing connection to %s: %v", s.cfg.ID, addr, err)
		}
	}
	return reply, nil
}

// roundTrip arms the whole-call deadline, writes the call, reads the reply,
// and clears the deadline so the connection can be parked for reuse.
//
//ripplevet:transport
func roundTrip(conn net.Conn, call *wire.Call, timeout time.Duration) (*wire.Reply, error) {
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if err := wire.WriteMessage(conn, call); err != nil {
		return nil, err
	}
	var reply wire.Reply
	if err := wire.ReadMessage(conn, &reply); err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return nil, err
	}
	return &reply, nil
}

func sortLinks(links []LinkSpec, proc core.Processor, w overlay.Node) []LinkSpec {
	type ranked struct {
		link LinkSpec
		prio float64
	}
	rs := make([]ranked, len(links))
	for i, l := range links {
		rs[i] = ranked{link: l, prio: proc.LinkPriority(w, l.Region)}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].prio < rs[j].prio })
	out := make([]LinkSpec, len(rs))
	for i, r := range rs {
		out[i] = r.link
	}
	return out
}

// QueryResult is the full outcome of a query against a deployment, including
// the partial-answer accounting: when Partial() reports true, FailedRegions
// lists the only parts of the domain the answer can be missing tuples from,
// so the initiator can report a completeness bound instead of pretending the
// answer is exact.
type QueryResult struct {
	Answers       []dataset.Tuple
	Stats         sim.Stats
	FailedRegions []overlay.Region
	Trace         *trace.Tree // reconstructed hop tree; nil unless QueryTraced
	// CacheHit marks an answer served from the initiator peer's result cache:
	// the answers are the canonical (ID-ordered) form of a prior identical
	// query's, and the cost counters are zero — no propagation happened.
	CacheHit bool
	// Plan and PlanR surface the serving peer's adaptive-planner decision
	// when the query was issued with r = RAuto against a planning peer: the
	// rendered decision and the ripple parameter the query actually executed
	// with. Plan is empty for static queries.
	Plan  string
	PlanR int
}

// Partial reports whether any subtree was lost; it derives from the stats so
// the two can never diverge.
func (r *QueryResult) Partial() bool { return r.Stats.Partial }

// Query runs a query against a deployment from the peer at addr, returning
// the collected answers and cost statistics reconstructed from the reply.
// Partiality is surfaced through the stats (Partial, RPCFailures); use
// QueryDetailed for the lost regions themselves.
func Query(addr, queryType string, params []byte, dims, r int) ([]dataset.Tuple, sim.Stats, error) {
	res, err := QueryDetailed(addr, queryType, params, dims, r, 0)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	return res.Answers, res.Stats, nil
}

// QueryDetailed runs a query with an explicit client-side timeout (0 uses
// the default call timeout) and returns the full result including
// partial-answer accounting. A reply whose Error field is set — the
// initiator peer itself failed to process the query — is returned as an
// error.
func QueryDetailed(addr, queryType string, params []byte, dims, r int, timeout time.Duration) (*QueryResult, error) {
	return queryCall(addr, queryType, params, dims, r, timeout, false, overlay.Region{})
}

// QueryScoped is QueryDetailed restricted to a sub-region of the domain: only
// tuples inside scope qualify as answers and the traversal is pruned to it.
// An empty scope behaves exactly like QueryDetailed. Scope — unlike r or the
// peer queried — is part of the result's cache identity on the serving peer.
func QueryScoped(addr, queryType string, params []byte, dims, r int, scope overlay.Region, timeout time.Duration) (*QueryResult, error) {
	return queryCall(addr, queryType, params, dims, r, timeout, false, scope)
}

// QueryTraced is QueryDetailed with hop-tree tracing: every peer records its
// span and convergecasts it back, and the result's Trace holds the query's
// reconstructed propagation tree — structurally identical to the one the
// in-process engines produce for the same overlay and r, with lost subtrees
// marked.
func QueryTraced(addr, queryType string, params []byte, dims, r int, timeout time.Duration) (*QueryResult, error) {
	return queryCall(addr, queryType, params, dims, r, timeout, true, overlay.Region{})
}

// Insert applies an insert mutation through the peer at addr: the tuple is
// routed greedily to the owner of its point, applied there, mirrored onto the
// owner's zone replicas, and every peer's result cache is invalidated before
// the call returns. It reports how many peers applied the op.
func Insert(addr string, t dataset.Tuple, timeout time.Duration) (int, error) {
	return mutateCall(addr, wire.OpInsert, t, timeout)
}

// Delete applies a delete mutation through the peer at addr; the tuple is
// matched by ID at the owner of t.Vec. It reports how many peers applied the
// op — zero when no such tuple exists.
func Delete(addr string, t dataset.Tuple, timeout time.Duration) (int, error) {
	return mutateCall(addr, wire.OpDelete, t, timeout)
}

// mutateCall is the one-shot client half of the mutation path.
//
//ripplevet:transport
func mutateCall(addr, op string, t dataset.Tuple, timeout time.Duration) (int, error) {
	if timeout == 0 {
		timeout = DefaultOptions().CallTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	reply, err := roundTrip(conn, &wire.Call{Op: op, Tuple: t}, timeout)
	if err != nil {
		return 0, err
	}
	if reply.Error != "" {
		return 0, replyErr(addr, reply)
	}
	return reply.Acks, nil
}

// queryCall is the one-shot client half of the wire protocol: it dials the
// initiator peer, arms a whole-call deadline, and performs one sequential
// request/reply exchange. It deliberately skips mux negotiation — a single
// call gains nothing from multiplexing and the hello would cost a round
// trip; workloads issuing concurrent queries use Client, which negotiates.
//
//ripplevet:transport
func queryCall(addr, queryType string, params []byte, dims, r int, timeout time.Duration, traced bool, scope overlay.Region) (*QueryResult, error) {
	if timeout == 0 {
		timeout = DefaultOptions().CallTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	reply, err := roundTrip(conn, buildCall(queryType, params, dims, r, traced, scope), timeout)
	if err != nil {
		return nil, err
	}
	if reply.Error != "" {
		return nil, replyErr(addr, reply)
	}
	return resultFromReply(reply, traced), nil
}

// Deploy starts one server per peer of an overlay snapshot on loopback TCP,
// wiring link addresses, and returns the servers plus an id->address map.
// Callers must Close every server.
func Deploy(net_ overlay.Network, codecs ...wire.Codec) ([]*Server, map[string]string, error) {
	return DeployOpts(net_, Options{}, codecs...)
}

// DeployOpts is Deploy with explicit fault-tolerance options shared by every
// peer of the deployment. When Options.Replication > 1 it builds the overlay's
// replica placement, attaches each neighbour's replica holders to the link
// specs, and installs the mirrored shares on the holders, so lost subtrees
// fail over instead of landing in FailedRegions.
func DeployOpts(net_ overlay.Network, opts Options, codecs ...wire.Codec) ([]*Server, map[string]string, error) {
	nodes := net_.Nodes()
	var rm *overlay.ReplicaMap
	if opts.Replication > 1 {
		rm = overlay.BuildReplicas(net_, opts.Replication)
	}
	servers := make([]*Server, len(nodes))
	addrs := make(map[string]string, len(nodes))
	for i, n := range nodes {
		srv := NewServerOpts(Config{ID: n.ID(), Zone: n.Zone(), Tuples: n.Tuples()}, opts, codecs...)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			for _, s := range servers[:i] {
				s.Close()
			}
			return nil, nil, err
		}
		servers[i] = srv
		addrs[n.ID()] = addr
	}
	for i, n := range nodes {
		servers[i].SetLinks(linkSpecsFor(n, addrs, rm))
	}
	if rm != nil {
		// Mirror each primary's share — zone, tuples, and links carrying their
		// own replica addresses, so recovery composes when a replica's onward
		// neighbour is dead too — onto its ring-successor holders.
		holders := make(map[string][]ReplicaShare)
		for _, p := range nodes {
			share := ReplicaShare{ID: p.ID(), Zone: p.Zone(), Tuples: p.Tuples(), Links: linkSpecsFor(p, addrs, rm)}
			for _, rep := range rm.Replicas(p.ID()) {
				holders[rep.ID()] = append(holders[rep.ID()], share)
			}
		}
		for i, n := range nodes {
			if shares := holders[n.ID()]; shares != nil {
				servers[i].SetReplicas(shares)
			}
			servers[i].SetMirrors(replicaAddrs(rm, n.ID(), addrs))
		}
	}
	return servers, addrs, nil
}

// replicaAddrs resolves a peer's replica holders to wire addresses.
func replicaAddrs(rm *overlay.ReplicaMap, id string, addrs map[string]string) []ReplicaAddr {
	var out []ReplicaAddr
	for _, rep := range rm.Replicas(id) {
		out = append(out, ReplicaAddr{ID: rep.ID(), Addr: addrs[rep.ID()]})
	}
	return out
}

// linkSpecsFor converts a node's overlay links to wire form, attaching each
// neighbour's replica holders when a replica placement is in force.
func linkSpecsFor(n overlay.Node, addrs map[string]string, rm *overlay.ReplicaMap) []LinkSpec {
	var links []LinkSpec
	for _, l := range n.Links() {
		spec := LinkSpec{ID: l.To.ID(), Addr: addrs[l.To.ID()], Region: l.Region}
		if rm != nil {
			for _, rep := range rm.Replicas(l.To.ID()) {
				spec.Replicas = append(spec.Replicas, ReplicaAddr{ID: rep.ID(), Addr: addrs[rep.ID()]})
			}
		}
		links = append(links, spec)
	}
	return links
}
