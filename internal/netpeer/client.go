package netpeer

import (
	"net"
	"sync"
	"time"

	"ripple/internal/dataset"
	"ripple/internal/overlay"
	"ripple/internal/sim"
	"ripple/internal/trace"
	"ripple/internal/wire"
)

// buildCall assembles the initiator's root call. A non-empty scope restricts
// the query to that sub-region: it prunes the traversal (the root restriction
// starts at the scope instead of the whole domain, mirroring what the
// in-process engines do) and rides every sub-call so peers filter their local
// answers to it.
func buildCall(queryType string, params []byte, dims, r int, traced bool, scope overlay.Region) *wire.Call {
	call := &wire.Call{
		QueryType: queryType,
		Params:    params,
		Restrict:  overlay.Whole(dims),
		Scope:     scope,
		R:         r,
		Hops:      0,
	}
	if !scope.IsEmpty() {
		call.Restrict = scope
	}
	if traced {
		call.Traced = true
		call.SpanID = trace.RootID
	}
	return call
}

// resultFromReply reconstructs the query outcome from the initiator's reply.
func resultFromReply(reply *wire.Reply, traced bool) *QueryResult {
	res := &QueryResult{
		Answers:       reply.Answers,
		FailedRegions: reply.FailedRegions,
		CacheHit:      reply.CacheHit,
		Plan:          reply.Plan,
		PlanR:         reply.PlanR,
	}
	for _, p := range reply.Peers {
		res.Stats.Touch(p)
	}
	res.Stats.Latency = reply.Completion
	res.Stats.StateMsgs = reply.StateMsgs
	res.Stats.TuplesSent = reply.TuplesSent
	res.Stats.RPCFailures = reply.Failures
	res.Stats.Recovered = reply.Recovered
	res.Stats.Failovers = reply.Failovers
	res.Stats.Retries = reply.Retries
	res.Stats.TimedOut = reply.TimedOut
	res.Stats.Partial = reply.Partial
	if traced {
		res.Trace = trace.Build(reply.Spans)
	}
	return res
}

// Client is an initiator-side handle on one deployment peer that keeps its
// TCP connection warm across queries, so a workload issuing many queries
// pays one handshake instead of one per query. The package-level Query
// functions remain the one-shot path. A Client is safe for concurrent use.
// By default it negotiates the multiplexed protocol on first use, so
// concurrent queries share the single connection as independent streams; a
// remote that only speaks the sequential protocol — or a Client built with
// NewSequentialClient — serialises concurrent queries on the connection
// instead, which is the pre-mux behaviour.
type Client struct {
	addr       string
	timeout    time.Duration
	sequential bool

	mu     sync.Mutex
	conn   net.Conn // warm sequential-protocol connection
	mc     *muxConn
	legacy bool // remote negotiated down; stick to the sequential protocol
	wg     sync.WaitGroup
}

// NewClient returns a client for the peer at addr. timeout bounds each
// query end to end (0 uses the default call timeout). The client does not
// connect until the first query.
func NewClient(addr string, timeout time.Duration) *Client {
	if timeout == 0 {
		timeout = DefaultOptions().CallTimeout
	}
	return &Client{addr: addr, timeout: timeout}
}

// NewSequentialClient returns a client pinned to the sequential one-call-
// per-connection protocol, skipping mux negotiation entirely. Kept for
// benchmarks against the pre-mux transport and for remotes known to predate
// it (saves the hello round trip the negotiation would spend discovering
// that).
func NewSequentialClient(addr string, timeout time.Duration) *Client {
	c := NewClient(addr, timeout)
	c.sequential = true
	return c
}

// Close tears down the warm connection, if any, failing any in-flight
// streams. The client stays usable: the next query redials.
func (c *Client) Close() error {
	c.mu.Lock()
	mc := c.mc
	conn := c.conn
	c.mc = nil
	c.conn = nil
	c.mu.Unlock()
	if mc != nil {
		mc.fail(errMuxClosed)
	}
	var err error
	if conn != nil {
		err = conn.Close()
	}
	c.wg.Wait() // the mux read loop exits once its connection is closed
	return err
}

// do performs one exchange: as a stream on the shared mux connection when
// the remote speaks the protocol, over the warm sequential connection
// otherwise. A reused connection that fails with a non-timeout error is
// assumed stale (the peer restarted since it was parked) and the exchange
// is repeated once on a fresh dial — for a mux connection that means a
// fresh negotiation, so a remote that restarted with a different protocol
// version is rediscovered rather than assumed.
func (c *Client) do(call *wire.Call) (*wire.Reply, error) {
	for attempt := 0; attempt < 2; attempt++ {
		mc, reused, err := c.muxTransport()
		if err != nil {
			return nil, err
		}
		if mc == nil {
			break // sequential protocol
		}
		reply, err := mc.call(call, c.timeout)
		if err == nil {
			return reply, nil
		}
		if !reused || isTimeout(err) {
			return nil, err
		}
		c.mu.Lock()
		if c.mc == mc {
			c.mc = nil
		}
		c.mu.Unlock()
	}
	return c.doSequential(call)
}

// muxTransport returns the live mux connection, negotiating one on first
// use. nil with no error means the client runs the sequential protocol —
// pinned, or discovered from the remote's answer to the hello. reused
// reports whether the connection predates this call (and so may be stale).
//
//ripplevet:transport
func (c *Client) muxTransport() (mc *muxConn, reused bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sequential || c.legacy {
		return nil, false, nil
	}
	if c.mc != nil && !c.mc.isDead() {
		return c.mc, true, nil
	}
	c.mc = nil
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, false, err
	}
	ver, err := muxHandshake(conn, c.timeout)
	if err != nil {
		conn.Close()
		if isTimeout(err) {
			return nil, false, err // hung remote, not a legacy one
		}
		c.legacy = true // pre-mux remote dropped the hello
		return nil, false, nil
	}
	if ver == 0 {
		// The remote declined multiplexing; the sequential protocol
		// continues on this same connection, so park it warm.
		c.legacy = true
		if c.conn != nil {
			c.conn.Close()
		}
		c.conn = conn
		return nil, false, nil
	}
	m := newMuxConn(conn, c.timeout)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		m.readLoop()
	}()
	c.mc = m
	return m, false, nil
}

// doSequential is the pre-mux exchange over the warm sequential connection,
// dialling on first use. Concurrent queries serialise on the connection.
//
//ripplevet:transport
func (c *Client) doSequential(call *wire.Call) (*wire.Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	reused := c.conn != nil
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
		if err != nil {
			return nil, err
		}
		c.conn = conn
	}
	reply, err := roundTrip(c.conn, call, c.timeout)
	if err != nil {
		c.conn.Close()
		c.conn = nil
		if !reused || isTimeout(err) {
			return nil, err
		}
		conn, derr := net.DialTimeout("tcp", c.addr, c.timeout)
		if derr != nil {
			return nil, derr
		}
		reply, err = roundTrip(conn, call, c.timeout)
		if err != nil {
			conn.Close()
			return nil, err
		}
		c.conn = conn
	}
	return reply, nil
}

// query is the shared body of the Query variants.
func (c *Client) query(queryType string, params []byte, dims, r int, traced bool, scope overlay.Region) (*QueryResult, error) {
	reply, err := c.do(buildCall(queryType, params, dims, r, traced, scope))
	if err != nil {
		return nil, err
	}
	if reply.Error != "" {
		return nil, replyErr(c.addr, reply)
	}
	return resultFromReply(reply, traced), nil
}

// Query runs a query over the warm connection; see the package-level Query.
func (c *Client) Query(queryType string, params []byte, dims, r int) ([]dataset.Tuple, sim.Stats, error) {
	res, err := c.query(queryType, params, dims, r, false, overlay.Region{})
	if err != nil {
		return nil, sim.Stats{}, err
	}
	return res.Answers, res.Stats, nil
}

// QueryDetailed runs a query over the warm connection and returns the full
// result including partial-answer accounting.
func (c *Client) QueryDetailed(queryType string, params []byte, dims, r int) (*QueryResult, error) {
	return c.query(queryType, params, dims, r, false, overlay.Region{})
}

// QueryScoped is QueryDetailed restricted to a sub-region of the domain: only
// tuples inside scope qualify, and the traversal is pruned to it. An empty
// scope behaves exactly like QueryDetailed.
func (c *Client) QueryScoped(queryType string, params []byte, dims, r int, scope overlay.Region) (*QueryResult, error) {
	return c.query(queryType, params, dims, r, false, scope)
}

// QueryTraced is QueryDetailed with hop-tree tracing.
func (c *Client) QueryTraced(queryType string, params []byte, dims, r int) (*QueryResult, error) {
	return c.query(queryType, params, dims, r, true, overlay.Region{})
}

// Insert applies an insert mutation through this peer: the tuple is routed to
// the owner of its point, applied there, mirrored onto the owner's zone
// replicas, and result caches across the deployment are invalidated before
// the call returns. It reports how many peers applied the op (owner plus
// mirrors).
func (c *Client) Insert(t dataset.Tuple) (int, error) {
	return c.mutate(wire.OpInsert, t)
}

// Delete applies a delete mutation through this peer; the tuple is matched by
// ID at the owner of t.Vec. It reports how many peers applied the op — zero
// when no such tuple exists.
func (c *Client) Delete(t dataset.Tuple) (int, error) {
	return c.mutate(wire.OpDelete, t)
}

func (c *Client) mutate(op string, t dataset.Tuple) (int, error) {
	reply, err := c.do(&wire.Call{Op: op, Tuple: t})
	if err != nil {
		return 0, err
	}
	if reply.Error != "" {
		return 0, replyErr(c.addr, reply)
	}
	return reply.Acks, nil
}
