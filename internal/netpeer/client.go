package netpeer

import (
	"net"
	"sync"
	"time"

	"ripple/internal/dataset"
	"ripple/internal/overlay"
	"ripple/internal/sim"
	"ripple/internal/trace"
	"ripple/internal/wire"
)

// buildCall assembles the initiator's root call.
func buildCall(queryType string, params []byte, dims, r int, traced bool) *wire.Call {
	call := &wire.Call{
		QueryType: queryType,
		Params:    params,
		Restrict:  overlay.Whole(dims),
		R:         r,
		Hops:      0,
	}
	if traced {
		call.Traced = true
		call.SpanID = trace.RootID
	}
	return call
}

// resultFromReply reconstructs the query outcome from the initiator's reply.
func resultFromReply(reply *wire.Reply, traced bool) *QueryResult {
	res := &QueryResult{
		Answers:       reply.Answers,
		FailedRegions: reply.FailedRegions,
	}
	for _, p := range reply.Peers {
		res.Stats.Touch(p)
	}
	res.Stats.Latency = reply.Completion
	res.Stats.StateMsgs = reply.StateMsgs
	res.Stats.TuplesSent = reply.TuplesSent
	res.Stats.RPCFailures = reply.Failures
	res.Stats.Retries = reply.Retries
	res.Stats.TimedOut = reply.TimedOut
	res.Stats.Partial = reply.Partial
	if traced {
		res.Trace = trace.Build(reply.Spans)
	}
	return res
}

// Client is an initiator-side handle on one deployment peer that keeps its
// TCP connection warm across queries, so a workload issuing many queries
// pays one handshake instead of one per query. The package-level Query
// functions remain the one-shot path. A Client is safe for concurrent use;
// concurrent queries are serialised on the single connection.
type Client struct {
	addr    string
	timeout time.Duration

	mu   sync.Mutex
	conn net.Conn
}

// NewClient returns a client for the peer at addr. timeout bounds each
// query end to end (0 uses the default call timeout). The client does not
// connect until the first query.
func NewClient(addr string, timeout time.Duration) *Client {
	if timeout == 0 {
		timeout = DefaultOptions().CallTimeout
	}
	return &Client{addr: addr, timeout: timeout}
}

// Close tears down the warm connection, if any. The client stays usable: the
// next query redials.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// do performs one exchange over the warm connection, dialling on first use.
// A reused connection that fails with a non-timeout error is assumed stale
// (the peer restarted since it was parked) and the exchange is repeated once
// on a fresh dial.
//
//ripplevet:transport
func (c *Client) do(call *wire.Call) (*wire.Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	reused := c.conn != nil
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
		if err != nil {
			return nil, err
		}
		c.conn = conn
	}
	reply, err := roundTrip(c.conn, call, c.timeout)
	if err != nil {
		c.conn.Close()
		c.conn = nil
		if !reused || isTimeout(err) {
			return nil, err
		}
		conn, derr := net.DialTimeout("tcp", c.addr, c.timeout)
		if derr != nil {
			return nil, derr
		}
		reply, err = roundTrip(conn, call, c.timeout)
		if err != nil {
			conn.Close()
			return nil, err
		}
		c.conn = conn
	}
	return reply, nil
}

// query is the shared body of the Query variants.
func (c *Client) query(queryType string, params []byte, dims, r int, traced bool) (*QueryResult, error) {
	reply, err := c.do(buildCall(queryType, params, dims, r, traced))
	if err != nil {
		return nil, err
	}
	if reply.Error != "" {
		return nil, &RemoteError{Peer: c.addr, Msg: reply.Error}
	}
	return resultFromReply(reply, traced), nil
}

// Query runs a query over the warm connection; see the package-level Query.
func (c *Client) Query(queryType string, params []byte, dims, r int) ([]dataset.Tuple, sim.Stats, error) {
	res, err := c.query(queryType, params, dims, r, false)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	return res.Answers, res.Stats, nil
}

// QueryDetailed runs a query over the warm connection and returns the full
// result including partial-answer accounting.
func (c *Client) QueryDetailed(queryType string, params []byte, dims, r int) (*QueryResult, error) {
	return c.query(queryType, params, dims, r, false)
}

// QueryTraced is QueryDetailed with hop-tree tracing.
func (c *Client) QueryTraced(queryType string, params []byte, dims, r int) (*QueryResult, error) {
	return c.query(queryType, params, dims, r, true)
}
