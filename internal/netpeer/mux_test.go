package netpeer

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	gonet "net"

	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/metrics"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/topk"
	"ripple/internal/wire"
)

// slowCodec wraps the topk codec with a fixed processing delay, so tests can
// hold a server's mux workers busy for a deterministic window.
type slowCodec struct {
	topk.WireCodec
	delay time.Duration
}

func (c slowCodec) Name() string { return "slowtopk" }

func (c slowCodec) NewProcessor(params []byte) (core.Processor, error) {
	time.Sleep(c.delay) // runs inside process(), i.e. on a mux worker
	return c.WireCodec.NewProcessor(params)
}

// TestMuxConcurrentQueriesShareOneConnection: a mux client issues many
// queries at once; all must come back exact, multiplexed as streams over a
// single connection instead of serialised or spread over per-call dials.
func TestMuxConcurrentQueriesShareOneConnection(t *testing.T) {
	reg := metrics.New()
	ts := dataset.Uniform(600, 2, 41)
	net := midas.Build(24, midas.Options{Dims: 2, Seed: 7})
	overlay.Load(net, ts)
	opts := quietOpts(t)
	opts.Metrics = reg
	servers, _, err := DeployOpts(net, opts, topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	f := topk.UniformLinear(2)
	params := topkParams(t, 2, 12)
	want := topk.Brute(ts, f, 12)

	c := NewClient(servers[3].Addr(), 5*time.Second)
	defer c.Close()
	const concurrency = 32
	errs := make([]error, concurrency)
	var wg sync.WaitGroup
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			answers, _, err := c.Query("topk", params, 2, 1<<20)
			if err != nil {
				errs[i] = err
				return
			}
			got := topk.Select(answers, f, 12)
			for j := range want {
				if got[j].ID != want[j].ID {
					errs[i] = errors.New("wrong answer under concurrency")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent query %d: %v", i, err)
		}
	}
	c.mu.Lock()
	mc, seqConn := c.mc, c.conn
	c.mu.Unlock()
	if mc == nil || seqConn != nil {
		t.Fatalf("client transport: mc=%v conn=%v, want a mux connection and no sequential one", mc, seqConn)
	}
	if v := reg.Counter("ripple_netpeer_mux_streams_total", "").Value(); v == 0 {
		t.Fatal("no inter-peer calls were multiplexed")
	}
	if v := reg.Counter("ripple_netpeer_mux_fallbacks_total", "").Value(); v != 0 {
		t.Fatalf("%d remotes negotiated down in an all-mux deployment", v)
	}
	// Every admitted stream must have been released.
	waitGaugeZero(t, reg.Gauge("ripple_netpeer_inflight_streams", ""))
}

func waitGaugeZero(t *testing.T, g *metrics.Gauge) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if g.Value() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("inflight streams = %d, want 0 after quiescence", g.Value())
}

// slowServer starts a single mux peer running slowCodec with the given
// admission limits; it holds the whole domain and no links.
func slowServer(t *testing.T, reg *metrics.Registry, delay time.Duration, workers, queue int) *Server {
	t.Helper()
	opts := quietOpts(t)
	opts.Metrics = reg
	opts.MaxConcurrentCalls = workers
	opts.MaxCallQueue = queue
	srv := NewServerOpts(Config{
		ID:     "slow",
		Zone:   overlay.Whole(2),
		Tuples: dataset.Uniform(50, 2, 47),
	}, opts, slowCodec{delay: delay})
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestMuxAdmissionControlSheds: with one worker and a one-slot queue, a
// burst of concurrent streams must see most calls rejected as typed
// overloads — immediately, not after stalling the socket — while the
// admitted ones succeed and the server stays healthy for later traffic.
func TestMuxAdmissionControlSheds(t *testing.T) {
	reg := metrics.New()
	srv := slowServer(t, reg, 80*time.Millisecond, 1, 1)
	params := topkParams(t, 2, 5)
	c := NewClient(srv.Addr(), 5*time.Second)
	defer c.Close()

	// Warm the connection so the burst races only against admission.
	if _, _, err := c.Query("slowtopk", params, 2, 0); err != nil {
		t.Fatal(err)
	}

	const burst = 8
	var ok, overloaded, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.Query("slowtopk", params, 2, 0)
			var oe *OverloadError
			switch {
			case err == nil:
				ok.Add(1)
			case errors.As(err, &oe):
				overloaded.Add(1)
			default:
				other.Add(1)
			}
		}()
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("burst produced %d non-overload errors", other.Load())
	}
	if ok.Load() == 0 || overloaded.Load() == 0 {
		t.Fatalf("burst of %d: %d ok, %d overloaded — want both shedding and progress",
			burst, ok.Load(), overloaded.Load())
	}
	if v := reg.Counter("ripple_netpeer_overload_rejections_total", "").Value(); v != overloaded.Load() {
		t.Fatalf("overload counter %d, want %d", v, overloaded.Load())
	}
	// The server must shed load, not wedge: a follow-up query succeeds.
	if _, _, err := c.Query("slowtopk", params, 2, 0); err != nil {
		t.Fatalf("query after burst: %v", err)
	}
	waitGaugeZero(t, reg.Gauge("ripple_netpeer_inflight_streams", ""))
}

// TestMuxDeadConnectionFailsAllStreams: when the shared connection dies,
// every in-flight stream must fail promptly — not serialise into its own
// discovery of the corpse.
func TestMuxDeadConnectionFailsAllStreams(t *testing.T) {
	reg := metrics.New()
	srv := slowServer(t, reg, 300*time.Millisecond, 8, 8)
	params := topkParams(t, 2, 5)
	c := NewClient(srv.Addr(), 10*time.Second)
	defer c.Close()

	const streams = 4
	errs := make(chan error, streams)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.Query("slowtopk", params, 2, 0)
			errs <- err
		}()
	}
	time.Sleep(50 * time.Millisecond) // let all four streams get in flight
	srv.Close()
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("stream survived the server closing mid-call")
		}
	}
	// Four 300 ms calls serialised would take ≥1.2 s; concurrent failure is
	// bounded by one processing window plus teardown.
	if elapsed > time.Second {
		t.Fatalf("streams took %v to fail; a dead connection must fail them together", elapsed)
	}
}

// legacyFakePeer is a pre-mux peer: it speaks only length-prefixed
// sequential frames and drops any connection that sends something else —
// exactly what an old binary does when a hello arrives and reads as an
// oversized frame. It answers every call with the given reply.
func legacyFakePeer(t *testing.T, reply *wire.Reply) string {
	t.Helper()
	ln, err := gonet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn gonet.Conn) {
				defer conn.Close()
				for {
					var call wire.Call
					if err := wire.ReadMessage(conn, &call); err != nil {
						return // a mux hello lands here as an oversized frame
					}
					if err := wire.WriteMessage(conn, reply); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestClientFallsBackToLegacyPeer: a mux client whose hello is dropped must
// rediscover the peer as legacy and complete the query with sequential
// framing on a fresh connection.
func TestClientFallsBackToLegacyPeer(t *testing.T) {
	addr := legacyFakePeer(t, &wire.Reply{
		Answers:    []dataset.Tuple{{ID: 77}},
		Completion: 1,
		QueryMsgs:  1,
		Peers:      []string{"fake"},
	})
	c := NewClient(addr, 2*time.Second)
	defer c.Close()
	answers, stats, err := c.Query("topk", topkParams(t, 2, 1), 2, 0)
	if err != nil {
		t.Fatalf("query against legacy peer: %v", err)
	}
	if len(answers) != 1 || answers[0].ID != 77 || stats.PeersReached() != 1 {
		t.Fatalf("legacy fallback returned %v / %+v", answers, stats)
	}
	c.mu.Lock()
	legacy, mc := c.legacy, c.mc
	c.mu.Unlock()
	if !legacy || mc != nil {
		t.Fatalf("client state after fallback: legacy=%v mc=%v", legacy, mc)
	}
	// Later queries stay on the sequential path without renegotiating.
	if _, _, err := c.Query("topk", topkParams(t, 2, 1), 2, 0); err != nil {
		t.Fatalf("second query after fallback: %v", err)
	}
}

// TestServerFallsBackToLegacyPeer: a muxed server calling a pre-mux
// neighbour must negotiate down for that address and run the call over the
// legacy pooled path, counting the fallback.
func TestServerFallsBackToLegacyPeer(t *testing.T) {
	fakeAddr := legacyFakePeer(t, &wire.Reply{
		Answers:    []dataset.Tuple{{ID: 88}},
		Completion: 2,
		QueryMsgs:  1,
		Peers:      []string{"fake"},
	})
	reg := metrics.New()
	opts := quietOpts(t)
	opts.Metrics = reg
	srv := NewServerOpts(Config{
		ID:     "a",
		Zone:   overlay.Whole(2),
		Tuples: dataset.Uniform(40, 2, 51),
	}, opts, topk.WireCodec{})
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetLinks([]LinkSpec{{ID: "fake", Addr: fakeAddr, Region: overlay.Whole(2)}})

	res, err := QueryDetailed(srv.Addr(), "topk", topkParams(t, 2, 60), 2, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Answers {
		if a.ID == 88 {
			found = true
		}
	}
	if !found {
		t.Fatal("legacy neighbour's answer missing from the merged result")
	}
	if v := reg.Counter("ripple_netpeer_mux_fallbacks_total", "").Value(); v != 1 {
		t.Fatalf("mux fallbacks = %d, want 1", v)
	}
	if v := reg.Counter("ripple_netpeer_mux_streams_total", "").Value(); v != 0 {
		t.Fatalf("mux streams = %d toward a legacy-only neighbour", v)
	}
	// The discovery must be sticky: a second query spends no new fallback...
	if _, err := QueryDetailed(srv.Addr(), "topk", topkParams(t, 2, 60), 2, 1<<20, 0); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("ripple_netpeer_mux_fallbacks_total", "").Value(); v != 1 {
		t.Fatalf("mux fallbacks grew to %d; legacy discovery must be sticky", v)
	}
	// ...and rides the warm pooled connection.
	if v := reg.Counter("ripple_netpeer_conn_reuses_total", "").Value(); v == 0 {
		t.Fatal("legacy path never reused the pooled connection")
	}
}

// TestMuxDisabledServerNegotiatesDown: a DisableMux server answers the hello
// with version 0 and the connection continues sequentially — no redial, no
// error, same answers.
func TestMuxDisabledServerNegotiatesDown(t *testing.T) {
	ts := dataset.Uniform(300, 2, 53)
	opts := quietOpts(t)
	opts.DisableMux = true
	srv := NewServerOpts(Config{ID: "seq", Zone: overlay.Whole(2), Tuples: ts}, opts, topk.WireCodec{})
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	f := topk.UniformLinear(2)
	want := topk.Brute(ts, f, 7)
	c := NewClient(srv.Addr(), 2*time.Second)
	defer c.Close()
	answers, _, err := c.Query("topk", topkParams(t, 2, 7), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := topk.Select(answers, f, 7)
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("rank %d = %v, want %v", i, got[i], want[i])
		}
	}
	c.mu.Lock()
	legacy, mc, conn := c.legacy, c.mc, c.conn
	c.mu.Unlock()
	if !legacy || mc != nil {
		t.Fatalf("client state after version-0 ack: legacy=%v mc=%v", legacy, mc)
	}
	if conn == nil {
		t.Fatal("negotiated-down connection was not kept warm for the sequential path")
	}
}

// TestOverloadErrorClassification: admission rejections must be typed as
// retryable OverloadErrors, not fatal RemoteErrors — the distinction is what
// lets callPeer back off and try again instead of abandoning the subtree.
func TestOverloadErrorClassification(t *testing.T) {
	err := replyErr("p3", &wire.Reply{Error: wire.Overloaded("queue full")})
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("overloaded reply typed as %T", err)
	}
	if _, fatal := err.(*RemoteError); fatal {
		t.Fatal("overload classified as fatal RemoteError")
	}
	err = replyErr("p3", &wire.Reply{Error: "panic: boom"})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("processing failure typed as %T", err)
	}
}

// TestMuxOversizedFrameReportedOnStream: a stream whose frame exceeds
// MaxFrame gets the typed rejection back on that stream before the
// connection drops, instead of a silent hangup.
func TestMuxOversizedFrameReportedOnStream(t *testing.T) {
	srv := slowServer(t, nil, 0, 2, 2)
	conn, err := gonet.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteMuxHello(conn, wire.MuxVersion); err != nil {
		t.Fatal(err)
	}
	if ver, err := wire.ReadMuxHello(conn); err != nil || ver != wire.MuxVersion {
		t.Fatalf("handshake: ver=%d err=%v", ver, err)
	}
	// Hand-build a frame header claiming an over-limit body on stream 5.
	hdr := []byte{0, 0, 0, 5, 0xff, 0xff, 0xff, 0xff}
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	var reply wire.Reply
	stream, err := wire.ReadMuxFrame(conn, &reply)
	if err != nil {
		t.Fatalf("reading the rejection: %v", err)
	}
	if stream != 5 {
		t.Fatalf("rejection on stream %d, want 5", stream)
	}
	if reply.Error == "" || !errors.As(replyErr("x", &reply), new(*RemoteError)) {
		t.Fatalf("rejection reply: %+v", reply)
	}
}

// benchThroughput measures aggregate query throughput through one shared
// client at the given concurrency. sequential pins both the deployment and
// the client to the pre-mux one-call-per-connection protocol, which is the
// baseline the mux columns are compared against. Inter-peer links carry an
// injected wall-clock delay so a query costs latency, not just loopback
// CPU: the throughput difference under concurrency is then the transport's
// ability to overlap that latency across in-flight calls, which is what
// multiplexing buys on a real network.
func benchThroughput(b *testing.B, concurrency int, sequential bool) {
	net := midas.Build(8, midas.Options{Dims: 2, Seed: 23})
	overlay.Load(net, dataset.Uniform(500, 2, 29))
	opts := Options{
		Logf:       func(string, ...interface{}) {},
		DisableMux: sequential,
		Faults: faults.New(faults.Config{
			Seed:      1,
			DelayRate: 1,
			Delay:     500 * time.Microsecond,
		}),
	}
	servers, _, err := DeployOpts(net, opts, topk.WireCodec{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	params, err := topk.WireCodec{}.EncodeParams(topk.UniformLinear(2), 32)
	if err != nil {
		b.Fatal(err)
	}
	var c *Client
	if sequential {
		c = NewSequentialClient(servers[0].Addr(), 0)
	} else {
		c = NewClient(servers[0].Addr(), 0)
	}
	defer c.Close()
	if _, _, err := c.Query("topk", params, 2, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				if _, _, err := c.Query("topk", params, 2, 0); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Throughput tier: ns/op is aggregate wall time per completed query, so
// queries/s = 1e9 / (ns/op). The mux-vs-sequential pairs at each
// concurrency are the committed BENCH_PR5.json baseline.
func BenchmarkMuxThroughputC1(b *testing.B)  { benchThroughput(b, 1, false) }
func BenchmarkMuxThroughputC8(b *testing.B)  { benchThroughput(b, 8, false) }
func BenchmarkMuxThroughputC64(b *testing.B) { benchThroughput(b, 64, false) }
func BenchmarkSeqThroughputC1(b *testing.B)  { benchThroughput(b, 1, true) }
func BenchmarkSeqThroughputC8(b *testing.B)  { benchThroughput(b, 8, true) }
func BenchmarkSeqThroughputC64(b *testing.B) { benchThroughput(b, 64, true) }
