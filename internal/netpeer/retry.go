package netpeer

import (
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"ripple/internal/faults"
	"ripple/internal/metrics"
	"ripple/internal/plan"
	"ripple/internal/storage"
	"ripple/internal/wire"
)

// RetryPolicy bounds how hard a peer tries to recover a failing link before
// declaring the subtree lost: exponential backoff with multiplicative jitter,
// capped, with a fixed number of extra attempts.
type RetryPolicy struct {
	// MaxRetries is the number of extra attempts after the first try.
	MaxRetries int
	// BackoffBase is the delay before the first retry; attempt i waits
	// BackoffBase·2^(i−1), capped at BackoffMax, scaled by the jitter factor.
	BackoffBase time.Duration
	// BackoffMax caps the pre-jitter delay.
	BackoffMax time.Duration
	// Jitter is the fraction j by which a delay is spread uniformly over
	// [d·(1−j), d·(1+j)], decorrelating retry storms across links.
	Jitter float64
}

// DefaultRetryPolicy is used when a Server is built with zero Options.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 2, BackoffBase: 20 * time.Millisecond, BackoffMax: 1 * time.Second, Jitter: 0.2}
}

// Backoff returns the delay before retry `attempt` (1-based). u in [0,1)
// supplies the jitter randomness; callers derive it deterministically from
// the link identity so a run is reproducible under a fixed fault seed.
func (p RetryPolicy) Backoff(attempt int, u float64) time.Duration {
	if attempt < 1 {
		return 0
	}
	d := p.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.BackoffMax {
			d = p.BackoffMax
			break
		}
	}
	if d > p.BackoffMax {
		d = p.BackoffMax
	}
	if p.Jitter > 0 {
		d = time.Duration(float64(d) * (1 - p.Jitter + 2*p.Jitter*u))
	}
	return d
}

// Options tune a Server's fault-tolerance behaviour. The zero value selects
// the defaults; a zero duration means "use the default", so partially filled
// Options compose.
type Options struct {
	// DialTimeout bounds establishing one TCP connection to a neighbour.
	DialTimeout time.Duration
	// CallTimeout bounds one RPC attempt end to end: writing the call and
	// reading the reply, which covers the neighbour's entire subtree
	// processing. A query issued against a deployment therefore returns
	// within roughly CallTimeout plus retry backoffs even when a peer hangs
	// mid-protocol.
	CallTimeout time.Duration
	// WriteTimeout bounds writing a reply back to a caller.
	WriteTimeout time.Duration
	// IdleTimeout is serveConn's per-message read deadline. A connection
	// idle between messages is re-armed (after checking for shutdown); one
	// that stalls in the middle of a frame is dropped, so a hung client
	// cannot pin a serving goroutine past Close.
	IdleTimeout time.Duration
	// Retry is the per-link recovery policy.
	Retry RetryPolicy
	// Replication is the zone replication factor a deployment builds its
	// replica placement with: each peer's share (zone, tuples, links) is
	// mirrored onto Replication−1 ring-successor peers, and lost subtrees fail
	// over to those replicas instead of landing in FailedRegions. Values 0 and
	// 1 both mean "no replication" (the pre-replication behaviour).
	Replication int
	// RecoveryBudget bounds the wall-clock time one processed call may spend
	// on replica failovers (across all its lost links); once exhausted,
	// remaining lost subtrees are recorded as failed regions immediately. Zero
	// means the default.
	RecoveryBudget time.Duration
	// MaxIdleConnsPerPeer caps how many warm TCP connections the peer parks
	// per remote address between RPCs. Zero means the default.
	MaxIdleConnsPerPeer int
	// IdleConnTimeout is how long a parked connection may sit unused before
	// the pool evicts it. Zero means the default. Remote peers re-arm their
	// own idle deadlines indefinitely, so any positive value is safe.
	IdleConnTimeout time.Duration
	// DisableConnPool reverts to the pre-pool behaviour: every RPC attempt
	// dials a fresh TCP connection. Mainly for benchmarks and diagnosis.
	DisableConnPool bool
	// MaxConcurrentCalls bounds how many calls a mux connection's worker
	// pool processes at once. Zero means the default.
	MaxConcurrentCalls int
	// MaxCallQueue bounds how many admitted calls may wait for a worker on
	// one mux connection. Past MaxConcurrentCalls in flight plus MaxCallQueue
	// queued, admission control rejects the call with wire.Overloaded instead
	// of stalling the socket. Zero means the default.
	MaxCallQueue int
	// DisableMux reverts to the sequential one-call-per-connection protocol:
	// the server acks mux hellos with version 0 and outgoing calls use the
	// legacy pooled path. Mainly for benchmarks and mixed-fleet diagnosis.
	DisableMux bool
	// Faults optionally injects deterministic link faults into every
	// outgoing RPC (see internal/faults). Nil means no faults.
	Faults *faults.Injector
	// Logf receives server-side fault diagnostics (failed links, recovered
	// panics). Defaults to the standard logger; set to a no-op to silence.
	Logf func(format string, args ...interface{})
	// Metrics optionally receives the peer's transport counters and latency
	// histograms (see internal/metrics); a deployment usually shares one
	// registry across its servers and serves it on /metrics. Nil disables
	// instrumentation at zero cost.
	Metrics *metrics.Registry
	// Storage selects the engine the peer serves its share — and any mirrored
	// replica shares — with. KindAuto (the zero value) defers to the
	// RIPPLE_STORAGE environment variable, defaulting to the scan baseline.
	Storage storage.Kind
	// CacheSize bounds the peer's result cache in bytes (internal/cache):
	// initiator queries processed by this peer are answered from the cache
	// when a prior identical query's answer is still valid. Zero disables
	// caching entirely (the pre-cache behaviour, at zero cost).
	CacheSize int64
	// CacheTTL bounds how long a cached answer may be served. Zero means the
	// cache default (cache.DefaultTTL). The TTL is the staleness backstop for
	// peers a mutation's invalidation broadcast could not reach.
	CacheTTL time.Duration
	// Planner, when non-nil, resolves root queries arriving with r =
	// plan.RAuto into a concrete mode/r on this peer (the initiator side of
	// the query), and is fed every completed root query's observed cost — so
	// static-r queries train the model too. Decisions are reported back on
	// wire.Reply.Plan/PlanR and as ripple_plan_* metrics when Metrics is set.
	Planner *plan.Planner
}

// DefaultOptions returns the production defaults.
func DefaultOptions() Options {
	return Options{
		DialTimeout:  2 * time.Second,
		CallTimeout:  15 * time.Second,
		WriteTimeout: 10 * time.Second,
		IdleTimeout:  30 * time.Second,
		Retry:        DefaultRetryPolicy(),
		Logf:         log.Printf,

		RecoveryBudget: 10 * time.Second,

		MaxIdleConnsPerPeer: 4,
		IdleConnTimeout:     30 * time.Second,

		MaxConcurrentCalls: 32,
		MaxCallQueue:       128,
	}
}

// withDefaults fills zero fields with the defaults.
func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.DialTimeout == 0 {
		o.DialTimeout = d.DialTimeout
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = d.CallTimeout
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = d.WriteTimeout
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = d.IdleTimeout
	}
	if o.Retry == (RetryPolicy{}) {
		o.Retry = d.Retry
	}
	if o.RecoveryBudget == 0 {
		o.RecoveryBudget = d.RecoveryBudget
	}
	if o.MaxIdleConnsPerPeer == 0 {
		o.MaxIdleConnsPerPeer = d.MaxIdleConnsPerPeer
	}
	if o.IdleConnTimeout == 0 {
		o.IdleConnTimeout = d.IdleConnTimeout
	}
	if o.MaxConcurrentCalls == 0 {
		o.MaxConcurrentCalls = d.MaxConcurrentCalls
	}
	if o.MaxCallQueue == 0 {
		o.MaxCallQueue = d.MaxCallQueue
	}
	if o.Logf == nil {
		o.Logf = d.Logf
	}
	if o.Storage == storage.KindAuto {
		o.Storage = storage.EnvKind()
	}
	return o
}

// RemoteError is a processing failure reported by the remote peer itself
// (wire.Reply.Error): the peer was reachable but crashed on the call. It is
// not retried — re-sending the same call would crash the peer the same way.
type RemoteError struct {
	Peer string
	Msg  string
}

// Error implements error.
func (e *RemoteError) Error() string { return fmt.Sprintf("peer %s: %s", e.Peer, e.Msg) }

// OverloadError is an admission-control rejection from the remote peer: its
// mux worker pool and call queue were full (wire.Overloaded in Reply.Error).
// Unlike RemoteError it is retried — overload is transient by construction,
// and the backoff between attempts is exactly the load shedding the remote
// asked for.
type OverloadError struct {
	Peer string
	Msg  string
}

// Error implements error.
func (e *OverloadError) Error() string { return fmt.Sprintf("peer %s: %s", e.Peer, e.Msg) }

// replyErr types a remote-reported Reply.Error: admission-control rejections
// become retryable OverloadErrors, everything else a fatal RemoteError.
func replyErr(peer string, reply *wire.Reply) error {
	if wire.IsOverloaded(reply.Error) {
		return &OverloadError{Peer: peer, Msg: reply.Error}
	}
	return &RemoteError{Peer: peer, Msg: reply.Error}
}

// errInjected marks transport failures simulated by the fault injector.
var (
	errInjectedDrop  = errors.New("netpeer: injected drop")
	errInjectedCrash = errors.New("netpeer: injected crash (reply lost)")
)

// isTimeout classifies an RPC failure as deadline-driven (hung peer) rather
// than an immediate transport error (dead peer).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
