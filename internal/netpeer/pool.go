package netpeer

import (
	"net"
	"sync"
	"time"

	"ripple/internal/metrics"
)

// idleConn is a warm connection parked in the pool, stamped so the reaper
// and get() can expire it.
type idleConn struct {
	conn   net.Conn
	parked time.Time
}

// connPool keeps established TCP connections to remote peers between RPCs.
// RIPPLE's message pattern makes this profitable: a peer talks to the same
// handful of neighbours for every query, so without a pool each hop pays a
// fresh TCP handshake. The pool is bounded per remote (overflow connections
// are closed, not queued) and idle connections are reaped after
// idleTimeout — the remote's serveConn re-arms its own idle deadline
// indefinitely, so a parked connection only goes stale when the remote
// restarts.
type connPool struct {
	maxPerPeer  int
	idleTimeout time.Duration
	evictions   *metrics.Counter // pooled conns closed by cap, expiry, or shutdown

	mu     sync.Mutex
	idle   map[string][]idleConn // addr -> parked conns, LIFO
	closed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// newConnPool starts a pool and its background reaper.
func newConnPool(maxPerPeer int, idleTimeout time.Duration, evictions *metrics.Counter) *connPool {
	p := &connPool{
		maxPerPeer:  maxPerPeer,
		idleTimeout: idleTimeout,
		evictions:   evictions,
		idle:        make(map[string][]idleConn),
		done:        make(chan struct{}),
	}
	p.wg.Add(1)
	go p.reapLoop()
	return p
}

// get returns a warm connection to addr, or nil when the caller must dial.
// Newest first: the most recently parked connection is the least likely to
// have been idle-closed anywhere along the path.
func (p *connPool) get(addr string) net.Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	conns := p.idle[addr]
	for len(conns) > 0 {
		ic := conns[len(conns)-1]
		conns = conns[:len(conns)-1]
		if len(conns) == 0 {
			delete(p.idle, addr)
		} else {
			p.idle[addr] = conns
		}
		if p.idleTimeout > 0 && time.Since(ic.parked) > p.idleTimeout {
			ic.conn.Close()
			p.evictions.Inc()
			continue
		}
		return ic.conn
	}
	return nil
}

// put parks a healthy connection for reuse. Past the per-peer cap — or after
// close — the connection is closed and counted as an eviction.
func (p *connPool) put(addr string, conn net.Conn) {
	p.mu.Lock()
	if p.closed || len(p.idle[addr]) >= p.maxPerPeer {
		p.mu.Unlock()
		conn.Close()
		p.evictions.Inc()
		return
	}
	p.idle[addr] = append(p.idle[addr], idleConn{conn: conn, parked: time.Now()})
	p.mu.Unlock()
}

// close evicts every parked connection, stops the reaper, and makes future
// put calls close their connections immediately. Idempotent.
func (p *connPool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = make(map[string][]idleConn)
	p.mu.Unlock()
	close(p.done)
	for _, conns := range idle {
		for _, ic := range conns {
			ic.conn.Close()
			p.evictions.Inc()
		}
	}
	p.wg.Wait()
}

// reapLoop periodically evicts connections that have sat idle past the
// timeout, so an idle deployment does not pin sockets forever.
func (p *connPool) reapLoop() {
	defer p.wg.Done()
	interval := p.idleTimeout / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-ticker.C:
			p.reapOnce(time.Now())
		}
	}
}

// reapOnce closes every parked connection older than the idle timeout.
func (p *connPool) reapOnce(now time.Time) {
	var expired []net.Conn
	p.mu.Lock()
	for addr, conns := range p.idle {
		keep := conns[:0]
		for _, ic := range conns {
			if now.Sub(ic.parked) > p.idleTimeout {
				expired = append(expired, ic.conn)
			} else {
				keep = append(keep, ic)
			}
		}
		if len(keep) == 0 {
			delete(p.idle, addr)
		} else {
			p.idle[addr] = keep
		}
	}
	p.mu.Unlock()
	for _, c := range expired {
		c.Close()
		p.evictions.Inc()
	}
}

// idleCount reports how many connections are parked for addr (tests only).
func (p *connPool) idleCount(addr string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle[addr])
}
