package netpeer

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"math"

	"ripple/internal/dataset"
	"ripple/internal/diversify"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/skyline"
	"ripple/internal/topk"
)

// quietOpts routes fault diagnostics to the test log and keeps retry waits
// short so failure-path tests stay fast.
func quietOpts(t *testing.T) Options {
	t.Helper()
	return Options{
		DialTimeout: 500 * time.Millisecond,
		CallTimeout: 5 * time.Second,
		Retry:       RetryPolicy{MaxRetries: 2, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond, Jitter: 0.2},
		Logf:        t.Logf,
	}
}

func deployMIDAS(t *testing.T, size int, ts []dataset.Tuple, dims int) ([]*Server, map[string]string) {
	t.Helper()
	net := midas.Build(size, midas.Options{Dims: dims, Seed: 7})
	overlay.Load(net, ts)
	servers, addrs, err := DeployOpts(net, quietOpts(t), topk.WireCodec{}, skyline.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	return servers, addrs
}

func TestTopKOverTCP(t *testing.T) {
	ts := dataset.NBA(3000, 2)
	servers, _ := deployMIDAS(t, 24, ts, 6)

	f := topk.UniformLinear(6)
	params, err := topk.WireCodec{}.EncodeParams(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := topk.Brute(ts, f, 10)
	for _, r := range []int{0, 2, 1 << 20} {
		answers, stats, err := Query(servers[3].Addr(), "topk", params, 6, r)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		got := topk.Select(answers, f, 10)
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("r=%d: rank %d = %v, want %v", r, i, got[i], want[i])
			}
		}
		if stats.PeersReached() == 0 || stats.Latency < 0 {
			t.Fatalf("r=%d: bogus stats %+v", r, stats)
		}
	}
}

func TestSkylineOverTCP(t *testing.T) {
	ts := dataset.Synth(dataset.SynthConfig{N: 1500, Dims: 3, Centers: 15, Seed: 3})
	servers, _ := deployMIDAS(t, 16, ts, 3)

	want := skyline.Compute(ts)
	for _, r := range []int{0, 1 << 20} {
		answers, _, err := Query(servers[0].Addr(), "skyline", nil, 3, r)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		got := skyline.Compute(answers)
		if len(got) != len(want) {
			t.Fatalf("r=%d: skyline %d vs %d", r, len(got), len(want))
		}
	}
}

func TestTCPCostsMatchEngine(t *testing.T) {
	// The networked protocol must reproduce the structural engine's costs:
	// same peers touched and the same hop-clock latency.
	ts := dataset.NBA(2000, 5)
	net := midas.Build(20, midas.Options{Dims: 6, Seed: 11})
	overlay.Load(net, ts)
	servers, addrs, err := Deploy(net, topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	f := topk.UniformLinear(6)
	params, _ := topk.WireCodec{}.EncodeParams(f, 5)
	proc := &topk.Processor{F: f, K: 5}
	for _, r := range []int{0, 1, 1 << 20} {
		w := net.Peers()[4]
		_, engineStats := topk.Run(w, f, 5, r)
		_, tcpStats, err := Query(addrs[w.ID()], "topk", params, 6, r)
		if err != nil {
			t.Fatal(err)
		}
		if engineStats.Latency != tcpStats.Latency {
			t.Fatalf("r=%d: latency engine %d vs tcp %d", r, engineStats.Latency, tcpStats.Latency)
		}
		if engineStats.QueryMsgs != tcpStats.QueryMsgs {
			t.Fatalf("r=%d: msgs engine %d vs tcp %d", r, engineStats.QueryMsgs, tcpStats.QueryMsgs)
		}
		// A healthy deployment must look exactly like the seed behaviour:
		// nothing partial, nothing failed, nothing retried.
		if tcpStats.Partial || tcpStats.RPCFailures != 0 || tcpStats.Retries != 0 || tcpStats.TimedOut != 0 {
			t.Fatalf("r=%d: fault accounting non-zero on a healthy deployment: %+v", r, tcpStats)
		}
	}
	_ = proc
}

func TestUnknownQueryTypeReportsRemoteError(t *testing.T) {
	ts := dataset.Uniform(100, 2, 1)
	servers, _ := deployMIDAS(t, 4, ts, 2)
	_, _, err := Query(servers[0].Addr(), "nope", nil, 2, 0)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("unknown query type must surface as RemoteError, got %v", err)
	}
	if !strings.Contains(re.Msg, "unknown query type") {
		t.Fatalf("remote error lost its cause: %q", re.Msg)
	}
	// The failure must not poison the server for well-formed queries.
	good, _ := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(2), 3)
	answers, _, err := Query(servers[0].Addr(), "topk", good, 2, 0)
	if err != nil || len(answers) == 0 {
		t.Fatalf("server unusable after unknown query type: %v", err)
	}
}

func TestDiversifySingleOverTCP(t *testing.T) {
	ts := dataset.MIRFlickr(1200, 9)
	net := midas.Build(16, midas.Options{Dims: 5, Seed: 19})
	overlay.Load(net, ts)
	servers, _, err := Deploy(net, diversify.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	q := diversify.NewQuery(ts[4].Vec, 0.5)
	base := dataset.Sample(ts, 3, 2)
	exclude := map[uint64]bool{}
	for _, b := range base {
		exclude[b.ID] = true
	}
	params, err := (diversify.WireCodec{}).EncodeParams(q, base, exclude, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	want := diversify.BruteSingle(ts, q, base, exclude, math.Inf(1))
	for _, r := range []int{0, 1 << 20} {
		answers, _, err := Query(servers[0].Addr(), "diversify", params, 5, r)
		if err != nil {
			t.Fatal(err)
		}
		var best *dataset.Tuple
		bestScore := math.Inf(1)
		for i := range answers {
			s := q.Phi(answers[i].Vec, base)
			if s < bestScore || (s == bestScore && best != nil && answers[i].ID < best.ID) {
				best, bestScore = &answers[i], s
			}
		}
		if best == nil || want == nil {
			t.Fatalf("r=%d: nil result", r)
		}
		if best.ID != want.ID && math.Abs(q.Phi(best.Vec, base)-q.Phi(want.Vec, base)) > 1e-12 {
			t.Fatalf("r=%d: TCP single-tuple answer %v, want %v", r, best, want)
		}
	}
}

func TestFileConfigRoundTrip(t *testing.T) {
	ts := dataset.Uniform(100, 2, 6)
	net := midas.Build(4, midas.Options{Dims: 2, Seed: 3})
	overlay.Load(net, ts)
	plans, err := Plan(net, "127.0.0.1", 7900)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 4 {
		t.Fatalf("%d plans", len(plans))
	}
	total := 0
	for _, fc := range plans {
		var buf bytes.Buffer
		if err := WriteConfig(&buf, fc); err != nil {
			t.Fatal(err)
		}
		got, err := ReadConfig(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Peer.ID != fc.Peer.ID || got.Addr != fc.Addr || got.Dims != 2 {
			t.Fatalf("round trip lost identity: %+v", got)
		}
		if len(got.Peer.Links) != len(fc.Peer.Links) {
			t.Fatal("links lost")
		}
		total += len(got.Peer.Tuples)
	}
	if total != 100 {
		t.Fatalf("tuples across configs = %d, want 100", total)
	}
	if _, err := ReadConfig(bytes.NewReader([]byte("{}"))); err == nil {
		t.Fatal("incomplete config must be rejected")
	}
}

func TestServerSurvivesMalformedCall(t *testing.T) {
	ts := dataset.Uniform(50, 2, 2)
	servers, _ := deployMIDAS(t, 2, ts, 2)
	// Query with the wrong dimensionality: the peer must not crash, and the
	// recovered panic must come back as a RemoteError naming the peer —
	// distinguishable from a legitimately empty answer set.
	params, _ := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(5), 3)
	_, _, err := Query(servers[0].Addr(), "topk", params, 5, 0)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("malformed call must surface as RemoteError, got %v", err)
	}
	if !strings.Contains(re.Msg, "panic") {
		t.Fatalf("remote error lost the recovered panic: %q", re.Msg)
	}
	good, _ := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(2), 3)
	answers, _, err := Query(servers[0].Addr(), "topk", good, 2, 0)
	if err != nil || len(answers) == 0 {
		t.Fatalf("server unusable after malformed call: %v", err)
	}
}

func TestQuerySurvivesDeadPeers(t *testing.T) {
	// Failure injection: kill a third of the deployment, then query. The
	// protocol must still terminate within the deadline budget and return the
	// answers held by reachable peers, with the loss on the record: the reply
	// is marked partial and every dead subtree's region is reported.
	ts := dataset.NBA(3000, 8)
	net := midas.Build(24, midas.Options{Dims: 6, Seed: 21})
	overlay.Load(net, ts)
	servers, _, err := DeployOpts(net, quietOpts(t), topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers[8:] {
			s.Close()
		}
	}()
	for _, s := range servers[:8] {
		s.Close() // a third of the overlay goes dark
	}

	f := topk.UniformLinear(6)
	params, _ := (topk.WireCodec{}).EncodeParams(f, 10)
	for _, r := range []int{0, 1 << 20} {
		start := time.Now()
		res, err := QueryDetailed(servers[12].Addr(), "topk", params, 6, r, 30*time.Second)
		if err != nil {
			t.Fatalf("r=%d: query failed outright: %v", r, err)
		}
		if elapsed := time.Since(start); elapsed > 20*time.Second {
			t.Fatalf("r=%d: query took %v with dead peers (must stay within the deadline budget)", r, elapsed)
		}
		if res.Stats.PeersReached() == 0 {
			t.Fatalf("r=%d: nothing processed", r)
		}
		if res.Stats.PeersReached() > 16 {
			t.Fatalf("r=%d: reached %d peers with 8 dead", r, res.Stats.PeersReached())
		}
		if !res.Partial() || !res.Stats.Partial {
			t.Fatalf("r=%d: dead subtrees must mark the answer partial", r)
		}
		if len(res.FailedRegions) == 0 || res.Stats.RPCFailures == 0 {
			t.Fatalf("r=%d: lost links unaccounted: regions=%d failures=%d",
				r, len(res.FailedRegions), res.Stats.RPCFailures)
		}
		if res.Stats.Retries == 0 {
			t.Fatalf("r=%d: dead links must have been retried before being declared lost", r)
		}
		for _, reg := range res.FailedRegions {
			if reg.IsEmpty() {
				t.Fatalf("r=%d: empty failed region recorded", r)
			}
		}
		// Answers must be a subset of the true data and internally consistent.
		got := topk.Select(res.Answers, f, 10)
		if len(got) == 0 {
			t.Fatalf("r=%d: no answers from surviving peers", r)
		}
	}
}
