package netpeer

import (
	"bytes"
	"testing"

	"math"

	"ripple/internal/dataset"
	"ripple/internal/diversify"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/skyline"
	"ripple/internal/topk"
)

func deployMIDAS(t *testing.T, size int, ts []dataset.Tuple, dims int) ([]*Server, map[string]string) {
	t.Helper()
	net := midas.Build(size, midas.Options{Dims: dims, Seed: 7})
	overlay.Load(net, ts)
	servers, addrs, err := Deploy(net, topk.WireCodec{}, skyline.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	return servers, addrs
}

func TestTopKOverTCP(t *testing.T) {
	ts := dataset.NBA(3000, 2)
	servers, _ := deployMIDAS(t, 24, ts, 6)

	f := topk.UniformLinear(6)
	params, err := topk.WireCodec{}.EncodeParams(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := topk.Brute(ts, f, 10)
	for _, r := range []int{0, 2, 1 << 20} {
		answers, stats, err := Query(servers[3].Addr(), "topk", params, 6, r)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		got := topk.Select(answers, f, 10)
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("r=%d: rank %d = %v, want %v", r, i, got[i], want[i])
			}
		}
		if stats.PeersReached() == 0 || stats.Latency < 0 {
			t.Fatalf("r=%d: bogus stats %+v", r, stats)
		}
	}
}

func TestSkylineOverTCP(t *testing.T) {
	ts := dataset.Synth(dataset.SynthConfig{N: 1500, Dims: 3, Centers: 15, Seed: 3})
	servers, _ := deployMIDAS(t, 16, ts, 3)

	want := skyline.Compute(ts)
	for _, r := range []int{0, 1 << 20} {
		answers, _, err := Query(servers[0].Addr(), "skyline", nil, 3, r)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		got := skyline.Compute(answers)
		if len(got) != len(want) {
			t.Fatalf("r=%d: skyline %d vs %d", r, len(got), len(want))
		}
	}
}

func TestTCPCostsMatchEngine(t *testing.T) {
	// The networked protocol must reproduce the structural engine's costs:
	// same peers touched and the same hop-clock latency.
	ts := dataset.NBA(2000, 5)
	net := midas.Build(20, midas.Options{Dims: 6, Seed: 11})
	overlay.Load(net, ts)
	servers, addrs, err := Deploy(net, topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	f := topk.UniformLinear(6)
	params, _ := topk.WireCodec{}.EncodeParams(f, 5)
	proc := &topk.Processor{F: f, K: 5}
	for _, r := range []int{0, 1, 1 << 20} {
		w := net.Peers()[4]
		_, engineStats := topk.Run(w, f, 5, r)
		_, tcpStats, err := Query(addrs[w.ID()], "topk", params, 6, r)
		if err != nil {
			t.Fatal(err)
		}
		if engineStats.Latency != tcpStats.Latency {
			t.Fatalf("r=%d: latency engine %d vs tcp %d", r, engineStats.Latency, tcpStats.Latency)
		}
		if engineStats.QueryMsgs != tcpStats.QueryMsgs {
			t.Fatalf("r=%d: msgs engine %d vs tcp %d", r, engineStats.QueryMsgs, tcpStats.QueryMsgs)
		}
	}
	_ = proc
}

func TestUnknownQueryTypeYieldsEmptyReply(t *testing.T) {
	ts := dataset.Uniform(100, 2, 1)
	servers, _ := deployMIDAS(t, 4, ts, 2)
	answers, stats, err := Query(servers[0].Addr(), "nope", nil, 2, 0)
	if err != nil {
		t.Fatalf("transport error: %v", err)
	}
	if len(answers) != 0 || stats.PeersReached() != 0 {
		t.Fatalf("unknown query type must yield an empty reply, got %d answers", len(answers))
	}
}

func TestDiversifySingleOverTCP(t *testing.T) {
	ts := dataset.MIRFlickr(1200, 9)
	net := midas.Build(16, midas.Options{Dims: 5, Seed: 19})
	overlay.Load(net, ts)
	servers, _, err := Deploy(net, diversify.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	q := diversify.NewQuery(ts[4].Vec, 0.5)
	base := dataset.Sample(ts, 3, 2)
	exclude := map[uint64]bool{}
	for _, b := range base {
		exclude[b.ID] = true
	}
	params, err := (diversify.WireCodec{}).EncodeParams(q, base, exclude, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	want := diversify.BruteSingle(ts, q, base, exclude, math.Inf(1))
	for _, r := range []int{0, 1 << 20} {
		answers, _, err := Query(servers[0].Addr(), "diversify", params, 5, r)
		if err != nil {
			t.Fatal(err)
		}
		var best *dataset.Tuple
		bestScore := math.Inf(1)
		for i := range answers {
			s := q.Phi(answers[i].Vec, base)
			if s < bestScore || (s == bestScore && best != nil && answers[i].ID < best.ID) {
				best, bestScore = &answers[i], s
			}
		}
		if best == nil || want == nil {
			t.Fatalf("r=%d: nil result", r)
		}
		if best.ID != want.ID && math.Abs(q.Phi(best.Vec, base)-q.Phi(want.Vec, base)) > 1e-12 {
			t.Fatalf("r=%d: TCP single-tuple answer %v, want %v", r, best, want)
		}
	}
}

func TestFileConfigRoundTrip(t *testing.T) {
	ts := dataset.Uniform(100, 2, 6)
	net := midas.Build(4, midas.Options{Dims: 2, Seed: 3})
	overlay.Load(net, ts)
	plans, err := Plan(net, "127.0.0.1", 7900)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 4 {
		t.Fatalf("%d plans", len(plans))
	}
	total := 0
	for _, fc := range plans {
		var buf bytes.Buffer
		if err := WriteConfig(&buf, fc); err != nil {
			t.Fatal(err)
		}
		got, err := ReadConfig(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Peer.ID != fc.Peer.ID || got.Addr != fc.Addr || got.Dims != 2 {
			t.Fatalf("round trip lost identity: %+v", got)
		}
		if len(got.Peer.Links) != len(fc.Peer.Links) {
			t.Fatal("links lost")
		}
		total += len(got.Peer.Tuples)
	}
	if total != 100 {
		t.Fatalf("tuples across configs = %d, want 100", total)
	}
	if _, err := ReadConfig(bytes.NewReader([]byte("{}"))); err == nil {
		t.Fatal("incomplete config must be rejected")
	}
}

func TestServerSurvivesMalformedCall(t *testing.T) {
	ts := dataset.Uniform(50, 2, 2)
	servers, _ := deployMIDAS(t, 2, ts, 2)
	// Query with the wrong dimensionality: the peer must answer (empty)
	// rather than crash, and remain usable afterwards.
	params, _ := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(5), 3)
	_, _, err := Query(servers[0].Addr(), "topk", params, 5, 0)
	if err != nil {
		t.Fatalf("malformed call broke transport: %v", err)
	}
	good, _ := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(2), 3)
	answers, _, err := Query(servers[0].Addr(), "topk", good, 2, 0)
	if err != nil || len(answers) == 0 {
		t.Fatalf("server unusable after malformed call: %v", err)
	}
}

func TestQuerySurvivesDeadPeers(t *testing.T) {
	// Failure injection: kill a third of the deployment, then query. The
	// protocol must still terminate and return the answers held by reachable
	// peers (a peer skips unreachable neighbours rather than failing).
	ts := dataset.NBA(3000, 8)
	net := midas.Build(24, midas.Options{Dims: 6, Seed: 21})
	overlay.Load(net, ts)
	servers, _, err := Deploy(net, topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers[8:] {
			s.Close()
		}
	}()
	for _, s := range servers[:8] {
		s.Close() // a third of the overlay goes dark
	}

	f := topk.UniformLinear(6)
	params, _ := (topk.WireCodec{}).EncodeParams(f, 10)
	for _, r := range []int{0, 1 << 20} {
		answers, stats, err := Query(servers[12].Addr(), "topk", params, 6, r)
		if err != nil {
			t.Fatalf("r=%d: query failed outright: %v", r, err)
		}
		if stats.PeersReached() == 0 {
			t.Fatalf("r=%d: nothing processed", r)
		}
		if stats.PeersReached() > 16 {
			t.Fatalf("r=%d: reached %d peers with 8 dead", r, stats.PeersReached())
		}
		// Answers must be a subset of the true data and internally consistent.
		got := topk.Select(answers, f, 10)
		if len(got) == 0 {
			t.Fatalf("r=%d: no answers from surviving peers", r)
		}
	}
}
