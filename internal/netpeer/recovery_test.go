package netpeer

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"ripple/internal/dataset"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/topk"
)

// recoveryFixture deploys a replicated loopback fleet over a MIDAS overlay
// and returns everything a failover test needs.
func recoveryFixture(t *testing.T, replication int) ([]*Server, map[string]string, *midas.Network, []byte) {
	t.Helper()
	ts := dataset.NBA(2000, 5)
	net := midas.Build(16, midas.Options{Dims: 6, Seed: 11})
	overlay.Load(net, ts)

	opts := quietOpts(t)
	opts.Replication = replication
	opts.DialTimeout = 300 * time.Millisecond
	opts.CallTimeout = 3 * time.Second
	opts.Retry = RetryPolicy{MaxRetries: 1, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond, Jitter: 0.2}
	servers, addrs, err := DeployOpts(net, opts, topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	params, _ := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(6), 10)
	return servers, addrs, net, params
}

// TestKilledServerFailsOverToReplica: with replication 2, killing one peer
// process must not cost the query anything — a replica serves the dead peer's
// zone, the answer set stays complete, and nothing is marked partial.
func TestKilledServerFailsOverToReplica(t *testing.T) {
	servers, addrs, net, params := recoveryFixture(t, 2)
	init := net.Peers()[2]

	baseline, err := QueryDetailed(addrs[init.ID()], "topk", params, 6, 0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Partial() {
		t.Fatal("baseline query partial on a healthy fleet")
	}

	// Kill any peer other than the initiator; fast mode floods the whole
	// domain, so the victim is guaranteed to be on some peer's hop path.
	var victim *Server
	for _, s := range servers {
		if s.cfg.ID != init.ID() {
			victim = s
			break
		}
	}
	victim.Close()

	res, err := QueryDetailed(addrs[init.ID()], "topk", params, 6, 0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial() || len(res.FailedRegions) != 0 {
		t.Fatalf("dead peer with a live replica must not cost a partial answer: partial=%t regions=%v",
			res.Partial(), res.FailedRegions)
	}
	if res.Stats.Recovered == 0 || res.Stats.Failovers < res.Stats.Recovered {
		t.Fatalf("expected at least one recovered subtree, got %+v", res.Stats)
	}
	if !reflect.DeepEqual(answerIDs(res.Answers), answerIDs(baseline.Answers)) {
		t.Fatalf("recovered answers differ from baseline:\nbase: %v\ngot:  %v",
			answerIDs(baseline.Answers), answerIDs(res.Answers))
	}
}

// TestAllReplicasDeadIsUnrecoverable: when a peer AND its replica are both
// down, the region genuinely cannot be served — it must land in
// FailedRegions and mark the answer partial, after the failover was tried.
func TestAllReplicasDeadIsUnrecoverable(t *testing.T) {
	servers, addrs, net, params := recoveryFixture(t, 2)
	init := net.Peers()[2]

	rm := overlay.BuildReplicas(net, 2)
	var victimID string
	for _, s := range servers {
		if s.cfg.ID != init.ID() && rm.Replicas(s.cfg.ID)[0].ID() != init.ID() {
			victimID = s.cfg.ID
			break
		}
	}
	repID := rm.Replicas(victimID)[0].ID()
	for _, s := range servers {
		if s.cfg.ID == victimID || s.cfg.ID == repID {
			s.Close()
		}
	}

	res, err := QueryDetailed(addrs[init.ID()], "topk", params, 6, 0, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial() || len(res.FailedRegions) == 0 {
		t.Fatalf("peer with no surviving replica must be a recorded partial loss: partial=%t regions=%v",
			res.Partial(), res.FailedRegions)
	}
	if res.Stats.Failovers == 0 {
		t.Fatalf("loss recorded without attempting failover: %+v", res.Stats)
	}
	// The dead replica is itself a primary for its own zone; that zone has a
	// surviving holder, so recovery must still have served it.
	if res.Stats.Recovered == 0 {
		t.Fatalf("the dead replica's own zone should have been recovered: %+v", res.Stats)
	}
}

// TestPlanOptsCarriesReplication: file-driven deployments get the same
// replica wiring DeployOpts installs in-process, and it survives the JSON
// round trip ripple-plan/ripple-serve use.
func TestPlanOptsCarriesReplication(t *testing.T) {
	ts := dataset.NBA(500, 5)
	net := midas.Build(8, midas.Options{Dims: 6, Seed: 7})
	overlay.Load(net, ts)

	configs, err := PlanOpts(net, "127.0.0.1", 9000, 2)
	if err != nil {
		t.Fatal(err)
	}
	rm := overlay.BuildReplicas(net, 2)
	held := 0
	for _, fc := range configs {
		for _, l := range fc.Peer.Links {
			want := rm.Replicas(l.ID)
			if len(l.Replicas) != len(want) {
				t.Fatalf("peer %s link %s carries %d replicas, want %d", fc.Peer.ID, l.ID, len(l.Replicas), len(want))
			}
			for i := range want {
				if l.Replicas[i].ID != want[i].ID() {
					t.Fatalf("peer %s link %s replica %d = %s, want %s", fc.Peer.ID, l.ID, i, l.Replicas[i].ID, want[i].ID())
				}
			}
		}
		held += len(fc.Peer.Replicas)
		var buf bytes.Buffer
		if err := WriteConfig(&buf, fc); err != nil {
			t.Fatal(err)
		}
		back, err := ReadConfig(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(back.Peer.Replicas) != len(fc.Peer.Replicas) {
			t.Fatalf("peer %s: %d shares after round trip, want %d", fc.Peer.ID, len(back.Peer.Replicas), len(fc.Peer.Replicas))
		}
		for i, sh := range back.Peer.Replicas {
			if sh.ID != fc.Peer.Replicas[i].ID || len(sh.Tuples) != len(fc.Peer.Replicas[i].Tuples) {
				t.Fatalf("peer %s share %d mangled by round trip", fc.Peer.ID, i)
			}
		}
	}
	// Factor 2: every peer holds exactly one other peer's share.
	if held != net.Size() {
		t.Fatalf("%d shares held fleet-wide, want %d (one per primary)", held, net.Size())
	}
	if _, err := Plan(net, "127.0.0.1", 9000); err != nil {
		t.Fatal(err)
	}
}
