package netpeer

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ripple/internal/overlay"
)

// FileConfig is the on-disk description of one peer process: where it
// listens plus its share of the overlay. Written by `ripple-plan`, consumed
// by `ripple-serve`, so a deployment can run as real separate processes.
type FileConfig struct {
	Addr string `json:"addr"`
	Dims int    `json:"dims"`
	Peer Config `json:"peer"`
}

// WriteConfig serialises a peer config as JSON.
func WriteConfig(w io.Writer, fc *FileConfig) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fc); err != nil {
		return fmt.Errorf("netpeer: write config: %w", err)
	}
	return nil
}

// ReadConfig parses a peer config.
func ReadConfig(r io.Reader) (*FileConfig, error) {
	var fc FileConfig
	if err := json.NewDecoder(r).Decode(&fc); err != nil {
		return nil, fmt.Errorf("netpeer: read config: %w", err)
	}
	if fc.Addr == "" || fc.Peer.ID == "" || fc.Dims <= 0 {
		return nil, fmt.Errorf("netpeer: config missing addr, peer id or dims")
	}
	return &fc, nil
}

// ReadConfigFile loads a peer config from disk.
func ReadConfigFile(path string) (*FileConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadConfig(f)
}

// Plan slices an overlay snapshot into per-peer file configs with
// pre-assigned addresses: host:basePort, host:basePort+1, ... in node order.
func Plan(net_ overlay.Network, host string, basePort int) ([]*FileConfig, error) {
	return PlanOpts(net_, host, basePort, 1)
}

// PlanOpts is Plan with an explicit zone replication factor. With factor > 1
// each peer's config additionally carries replica addresses on its links and
// the mirrored shares it holds for other peers, exactly mirroring what
// DeployOpts installs in-process, so file-driven deployments recover lost
// subtrees the same way.
func PlanOpts(net_ overlay.Network, host string, basePort, factor int) ([]*FileConfig, error) {
	nodes := net_.Nodes()
	addrs := make(map[string]string, len(nodes))
	for i, n := range nodes {
		addrs[n.ID()] = fmt.Sprintf("%s:%d", host, basePort+i)
	}
	var rm *overlay.ReplicaMap
	if factor > 1 {
		rm = overlay.BuildReplicas(net_, factor)
	}
	holders := make(map[string][]ReplicaShare)
	if rm != nil {
		for _, p := range nodes {
			share := ReplicaShare{ID: p.ID(), Zone: p.Zone(), Tuples: p.Tuples(), Links: linkSpecsFor(p, addrs, rm)}
			for _, rep := range rm.Replicas(p.ID()) {
				holders[rep.ID()] = append(holders[rep.ID()], share)
			}
		}
	}
	out := make([]*FileConfig, len(nodes))
	for i, n := range nodes {
		peer := Config{ID: n.ID(), Zone: n.Zone(), Tuples: n.Tuples(),
			Links: linkSpecsFor(n, addrs, rm), Replicas: holders[n.ID()]}
		if rm != nil {
			peer.Mirrors = replicaAddrs(rm, n.ID(), addrs)
		}
		out[i] = &FileConfig{Addr: addrs[n.ID()], Dims: net_.Dims(), Peer: peer}
	}
	return out, nil
}
