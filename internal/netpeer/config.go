package netpeer

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ripple/internal/overlay"
)

// FileConfig is the on-disk description of one peer process: where it
// listens plus its share of the overlay. Written by `ripple-plan`, consumed
// by `ripple-serve`, so a deployment can run as real separate processes.
type FileConfig struct {
	Addr string `json:"addr"`
	Dims int    `json:"dims"`
	Peer Config `json:"peer"`
}

// WriteConfig serialises a peer config as JSON.
func WriteConfig(w io.Writer, fc *FileConfig) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fc); err != nil {
		return fmt.Errorf("netpeer: write config: %w", err)
	}
	return nil
}

// ReadConfig parses a peer config.
func ReadConfig(r io.Reader) (*FileConfig, error) {
	var fc FileConfig
	if err := json.NewDecoder(r).Decode(&fc); err != nil {
		return nil, fmt.Errorf("netpeer: read config: %w", err)
	}
	if fc.Addr == "" || fc.Peer.ID == "" || fc.Dims <= 0 {
		return nil, fmt.Errorf("netpeer: config missing addr, peer id or dims")
	}
	return &fc, nil
}

// ReadConfigFile loads a peer config from disk.
func ReadConfigFile(path string) (*FileConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadConfig(f)
}

// Plan slices an overlay snapshot into per-peer file configs with
// pre-assigned addresses: host:basePort, host:basePort+1, ... in node order.
func Plan(net_ overlay.Network, host string, basePort int) ([]*FileConfig, error) {
	nodes := net_.Nodes()
	addrs := make(map[string]string, len(nodes))
	for i, n := range nodes {
		addrs[n.ID()] = fmt.Sprintf("%s:%d", host, basePort+i)
	}
	out := make([]*FileConfig, len(nodes))
	for i, n := range nodes {
		var links []LinkSpec
		for _, l := range n.Links() {
			links = append(links, LinkSpec{ID: l.To.ID(), Addr: addrs[l.To.ID()], Region: l.Region})
		}
		out[i] = &FileConfig{
			Addr: addrs[n.ID()],
			Dims: net_.Dims(),
			Peer: Config{ID: n.ID(), Zone: n.Zone(), Tuples: n.Tuples(), Links: links},
		}
	}
	return out, nil
}
