package netpeer

import (
	"fmt"

	"ripple/internal/dataset"
	"ripple/internal/overlay"
	"ripple/internal/storage"
	"ripple/internal/wire"
)

// The wire-level data-mutation path (DESIGN.md §15). A mutation call names a
// tuple and an operation; whichever peer receives it routes it greedily to
// the owner of the tuple's point — each hop forwards along the one link whose
// region contains it — and the owner applies it, updates its zone mirrors,
// and floods a cache-invalidation event to every peer. Replies carry the
// number of peers that applied the op (owner plus mirrors).
//
// Consistency model: once the initiating client's call returns, no peer's
// result cache can serve a pre-mutation answer for a region covering the
// point — the invalidation broadcast completes before the owner acks, and
// generation stamps (cache.Begin/Put) close the race against queries already
// in flight. Peers the broadcast could not reach (partitioned, restarting)
// fall back to the cache TTL as a staleness bound. There is no anti-entropy:
// a primary that was down while its mirrors applied mutations serves its
// pre-crash share when it returns.

// maxMutationHops bounds greedy routing (and the invalidation flood) against
// cyclic or stale link tables; contains-based routing on a healthy overlay
// terminates in at most the overlay diameter.
const maxMutationHops = 64

// processMutation handles one OpInsert/OpDelete delivery.
func (s *Server) processMutation(call *wire.Call) (*wire.Reply, error) {
	t := call.Tuple
	if len(t.Vec) == 0 {
		return nil, fmt.Errorf("netpeer: %s call without tuple", call.Op)
	}
	s.mu.RLock()
	cfg := s.cfg
	s.mu.RUnlock()

	if call.ActAs != "" && call.ActAs != cfg.ID {
		return s.mutateAs(cfg, call)
	}
	if cfg.Zone.Contains(t.Vec) {
		return s.applyOwned(cfg, call)
	}
	return s.routeMutation(cfg, call)
}

// applyOwned applies a mutation this peer owns: rewrite the share, rebuild
// the store, fan out to the peers mirroring this share, then flood the
// invalidation. A delete whose tuple is not in the share acks zero peers and
// skips the fan-out — nothing changed, nothing can be stale.
func (s *Server) applyOwned(cfg Config, call *wire.Call) (*wire.Reply, error) {
	t := call.Tuple
	s.mu.Lock()
	tuples, changed := applyOp(s.cfg.Tuples, call.Op, t)
	if changed {
		s.cfg.Tuples = tuples
		s.store = storage.New(s.opts.Storage, tuples)
		s.ins.setStorage(s.store.Stats())
	}
	mirrors := s.cfg.Mirrors
	s.mu.Unlock()
	if !changed {
		return &wire.Reply{}, nil
	}
	s.cache.InvalidatePoint(t.Vec)

	reply := &wire.Reply{Acks: 1}
	for _, m := range mirrors {
		mc := *call
		mc.ActAs = cfg.ID
		mc.Hops = 0
		mrep, retries, err := s.callPeer(LinkSpec{ID: m.ID, Addr: m.Addr}, &mc)
		reply.Retries += retries
		if err != nil {
			// A mirror that cannot be updated is indistinguishable from a
			// dead one; it re-mirrors on the next SetReplicas. Failover reads
			// from it may serve pre-mutation data until then.
			s.opts.Logf("netpeer %s: mirror %s missed %s: %v", cfg.ID, m.ID, call.Op, err)
			reply.Failures++
			continue
		}
		reply.Acks += mrep.Acks
	}
	// The flood's receipts are coverage accounting for the invalidation
	// subtree, not mutation applies — wait for it (the consistency model
	// acks only after the broadcast) but keep them out of reply.Acks.
	s.floodInvalidation(cfg.Links, t, overlay.Whole(len(t.Vec)), 0, &wire.Reply{})
	return reply, nil
}

// mutateAs handles a mutation addressed to a dead peer this peer mirrors.
// Two cases, told apart by the share's zone: the point is in it — the dead
// peer owned it, so apply the op to the mirrored share (the caller dispatches
// the same call to every other mirror, so all survivors converge) — or it is
// not, and the dead peer was mid-route: route onward via the share's links as
// the dead peer would have, marking the reply Forwarded so the caller stops
// after this one dispatch instead of routing once per replica.
func (s *Server) mutateAs(cfg Config, call *wire.Call) (*wire.Reply, error) {
	t := call.Tuple
	share := findShare(cfg.Replicas, call.ActAs)
	if share == nil {
		return nil, fmt.Errorf("netpeer %s: no replica share for peer %q", cfg.ID, call.ActAs)
	}
	if !share.Zone.Contains(t.Vec) {
		fwd := *call
		fwd.ActAs = ""
		shareCfg := Config{ID: share.ID, Zone: share.Zone, Links: share.Links}
		reply, err := s.routeMutation(shareCfg, &fwd)
		if err != nil {
			return nil, err
		}
		reply.Forwarded = true
		return reply, nil
	}
	s.mu.Lock()
	i := shareIndex(s.cfg.Replicas, call.ActAs)
	if i < 0 {
		s.mu.Unlock()
		return nil, fmt.Errorf("netpeer %s: no replica share for peer %q", cfg.ID, call.ActAs)
	}
	tuples, changed := applyOp(s.cfg.Replicas[i].Tuples, call.Op, t)
	if changed {
		// Copy-on-write on the shares slice: queries snapshot cfg under the
		// read lock and keep reading the old backing array race-free.
		shares := make([]ReplicaShare, len(s.cfg.Replicas))
		copy(shares, s.cfg.Replicas)
		shares[i].Tuples = tuples
		s.cfg.Replicas = shares
		s.repStores[shares[i].ID] = storage.New(s.opts.Storage, tuples)
	}
	s.mu.Unlock()
	if !changed {
		return &wire.Reply{}, nil
	}
	s.cache.InvalidatePoint(t.Vec)
	return &wire.Reply{Acks: 1}, nil
}

// routeMutation forwards a mutation one hop toward the owner: the link whose
// region contains the point. A dead next hop fails over to its replicas —
// the first to accept either routed onward (Forwarded) or applied to its
// mirror, in which case the remaining replicas get the same dispatch so every
// surviving mirror converges.
func (s *Server) routeMutation(cfg Config, call *wire.Call) (*wire.Reply, error) {
	t := call.Tuple
	if call.Hops >= maxMutationHops {
		return nil, fmt.Errorf("netpeer %s: %s for %v exceeded %d hops", cfg.ID, call.Op, t.Vec, maxMutationHops)
	}
	for _, l := range cfg.Links {
		if !l.Region.Contains(t.Vec) {
			continue
		}
		fwd := *call
		fwd.Hops++
		reply, retries, err := s.callPeer(l, &fwd)
		if err == nil {
			reply.Retries += retries
			return reply, nil
		}
		s.opts.Logf("netpeer %s: lost mutation link to %s after %d retries: %v",
			cfg.ID, l.key(), retries, err)
		reply = &wire.Reply{Retries: retries, Failures: 1}
		applied := false
		for _, rep := range l.Replicas {
			repCall := fwd
			repCall.ActAs = l.key()
			rrep, rretries, rerr := s.callPeer(LinkSpec{ID: rep.ID, Addr: rep.Addr}, &repCall)
			reply.Retries += rretries
			reply.Failovers++
			if rerr != nil {
				s.opts.Logf("netpeer %s: replica %s could not apply %s for %s: %v",
					cfg.ID, rep.ID, call.Op, l.key(), rerr)
				continue
			}
			applied = applied || rrep.Acks > 0
			reply.Acks += rrep.Acks
			reply.Recovered++
			if rrep.Forwarded {
				return reply, nil
			}
		}
		if !applied {
			return nil, fmt.Errorf("netpeer %s: %s for %v lost: peer %s and all replicas unreachable",
				cfg.ID, call.Op, t.Vec, l.key())
		}
		return reply, nil
	}
	return nil, fmt.Errorf("netpeer %s: no link covers %v", cfg.ID, t.Vec)
}

// processInvalidate handles one OpInvalidate delivery: drop cached results
// covering the point and keep flooding under the restriction partition.
func (s *Server) processInvalidate(call *wire.Call) (*wire.Reply, error) {
	t := call.Tuple
	if len(t.Vec) == 0 {
		return nil, fmt.Errorf("netpeer: %s call without tuple", call.Op)
	}
	s.mu.RLock()
	links := s.cfg.Links
	s.mu.RUnlock()
	s.cache.InvalidatePoint(t.Vec)
	reply := &wire.Reply{Acks: 1}
	if call.Hops < maxMutationHops {
		s.floodInvalidation(links, t, call.Restrict, call.Hops+1, reply)
	}
	return reply, nil
}

// floodInvalidation fans an invalidation event out to every link whose region
// intersects restrict, concurrently, partitioning the restriction exactly
// like a fast-phase query so each peer of the overlay receives the event
// once. Delivery is best-effort: an unreachable subtree is logged and its
// peers fall back to the cache TTL; the mutation itself is not failed.
func (s *Server) floodInvalidation(links []LinkSpec, t dataset.Tuple, restrict overlay.Region, hops int, reply *wire.Reply) {
	type out struct {
		reply *wire.Reply
		link  LinkSpec
		err   error
	}
	var calls []chan out
	for _, l := range links {
		sub := l.Region.Intersect(restrict)
		if sub.IsEmpty() {
			continue
		}
		ch := make(chan out, 1)
		calls = append(calls, ch)
		go func(l LinkSpec, sub overlay.Region) {
			fwd := &wire.Call{Op: wire.OpInvalidate, Tuple: t, Restrict: sub, Hops: hops}
			r, _, err := s.callPeer(l, fwd)
			ch <- out{reply: r, link: l, err: err}
		}(l, sub)
	}
	for _, ch := range calls {
		o := <-ch
		if o.err != nil {
			s.opts.Logf("netpeer %s: invalidation flood lost link to %s: %v",
				s.cfg.ID, o.link.key(), o.err)
			continue
		}
		reply.Acks += o.reply.Acks
	}
}

// applyOp rewrites a tuple slice under a mutation op, into a fresh backing
// array so snapshots held by in-flight queries stay intact. It reports
// whether anything changed (a delete of an absent tuple does not).
func applyOp(tuples []dataset.Tuple, op string, t dataset.Tuple) ([]dataset.Tuple, bool) {
	switch op {
	case wire.OpInsert:
		out := make([]dataset.Tuple, len(tuples)+1)
		copy(out, tuples)
		out[len(tuples)] = t
		return out, true
	case wire.OpDelete:
		for i, u := range tuples {
			if u.ID == t.ID {
				out := make([]dataset.Tuple, 0, len(tuples)-1)
				out = append(out, tuples[:i]...)
				out = append(out, tuples[i+1:]...)
				return out, true
			}
		}
	}
	return tuples, false
}

// shareIndex locates a mirrored share by primary id; -1 when absent.
func shareIndex(shares []ReplicaShare, id string) int {
	for i := range shares {
		if shares[i].ID == id {
			return i
		}
	}
	return -1
}
