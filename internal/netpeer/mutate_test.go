package netpeer

import (
	"testing"
	"time"

	"ripple/internal/dataset"
	"ripple/internal/geom"
	"ripple/internal/knn"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/topk"
)

// mutateFixture deploys a loopback fleet for the mutation-path tests: knn is
// the query family (an inserted tuple at the query center has distance zero,
// so share freshness is directly observable in the answers).
func mutateFixture(t *testing.T, replication int, cacheBytes int64) ([]*Server, map[string]string) {
	t.Helper()
	net := midas.Build(16, midas.Options{Dims: 2, Seed: 7})
	overlay.Load(net, dataset.Uniform(400, 2, 29))
	opts := quietOpts(t)
	opts.Replication = replication
	opts.CacheSize = cacheBytes
	servers, addrs, err := DeployOpts(net, opts, knn.WireCodec{}, topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	return servers, addrs
}

func knnTestParams(t *testing.T, center geom.Point, k int) []byte {
	t.Helper()
	params, err := (knn.WireCodec{}).EncodeParams(center, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	return params
}

func hasID(ts []dataset.Tuple, id uint64) bool {
	for _, tt := range ts {
		if tt.ID == id {
			return true
		}
	}
	return false
}

// ownerAndOutsider splits the fleet around a point: the server whose zone
// contains it, and one that neither owns it nor is the given initiator.
func ownerAndOutsider(t *testing.T, servers []*Server, p geom.Point) (owner, outsider *Server) {
	t.Helper()
	for _, s := range servers {
		if s.cfg.Zone.Contains(p) {
			owner = s
		} else if outsider == nil {
			outsider = s
		}
	}
	if owner == nil || outsider == nil {
		t.Fatal("fixture did not partition the domain")
	}
	return owner, outsider
}

// TestInsertRoutesToOwnerAndRefreshesAnswers: an insert issued at a peer
// that does not own the tuple's point must be routed greedily to the owner,
// and subsequent queries through any peer must see the new tuple. Deleting
// it restores the original answers; a second identical delete changes
// nothing and acks zero peers.
func TestInsertRoutesToOwnerAndRefreshesAnswers(t *testing.T) {
	servers, _ := mutateFixture(t, 1, 0)
	center := geom.Point{0.31, 0.62}
	params := knnTestParams(t, center, 3)
	_, outsider := ownerAndOutsider(t, servers, center)

	base, err := QueryDetailed(servers[0].Addr(), "knn", params, 2, 0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tup := dataset.Tuple{ID: 1 << 40, Vec: center.Clone()}
	if hasID(base.Answers, tup.ID) {
		t.Fatal("fixture already contains the sentinel tuple")
	}

	acks, err := Insert(outsider.Addr(), tup, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if acks != 1 {
		t.Fatalf("unreplicated insert acked %d peers, want 1", acks)
	}
	res, err := QueryDetailed(servers[0].Addr(), "knn", params, 2, 0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !hasID(res.Answers, tup.ID) {
		t.Fatalf("inserted tuple (distance 0 from the query center) missing from answers %v", res.Answers)
	}

	acks, err = Delete(outsider.Addr(), tup, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if acks != 1 {
		t.Fatalf("delete acked %d peers, want 1", acks)
	}
	res, err = QueryDetailed(servers[0].Addr(), "knn", params, 2, 0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if hasID(res.Answers, tup.ID) {
		t.Fatal("deleted tuple still answered")
	}

	acks, err = Delete(outsider.Addr(), tup, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if acks != 0 {
		t.Fatalf("deleting an absent tuple acked %d peers, want 0 (nothing changed)", acks)
	}
}

// TestMutationFanOutKeepsMirrorsFresh: with replication 2 an insert must be
// applied at the owner and fanned out to its mirror, so that after the owner
// dies a failover query still sees the tuple — the mirrored share the
// replica answers from was kept in sync by the mutation path.
func TestMutationFanOutKeepsMirrorsFresh(t *testing.T) {
	servers, _ := mutateFixture(t, 2, 0)
	center := geom.Point{0.31, 0.62}
	params := knnTestParams(t, center, 3)
	owner, outsider := ownerAndOutsider(t, servers, center)

	tup := dataset.Tuple{ID: 1 << 41, Vec: center.Clone()}
	acks, err := Insert(outsider.Addr(), tup, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if acks < 2 {
		t.Fatalf("replicated insert acked %d peers, want owner + mirror(s)", acks)
	}

	owner.Close()
	res, err := QueryDetailed(outsider.Addr(), "knn", params, 2, 0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial() {
		t.Fatalf("failover left a partial answer: %v", res.FailedRegions)
	}
	if !hasID(res.Answers, tup.ID) {
		t.Fatal("tuple inserted before the owner died is missing from the failover answer; mirror fan-out lost it")
	}
}

// TestMutationInvalidatesCachesFleetWide: every peer caches at its own
// initiator boundary; a mutation anywhere must invalidate the covering
// entries at all of them (the invalidation flood follows the fast-mode
// restriction partition), while an unchanged mutation invalidates nothing.
func TestMutationInvalidatesCachesFleetWide(t *testing.T) {
	servers, _ := mutateFixture(t, 1, 8<<20)
	center := geom.Point{0.31, 0.62}
	params := knnTestParams(t, center, 3)
	a, b := servers[1], servers[3]

	warm := func(s *Server) {
		t.Helper()
		if _, err := QueryDetailed(s.Addr(), "knn", params, 2, 0, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		res, err := QueryDetailed(s.Addr(), "knn", params, 2, 0, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !res.CacheHit {
			t.Fatalf("peer %s: repeated identical query not served from cache", s.cfg.ID)
		}
	}
	warm(a)
	warm(b)

	// A no-op mutation must leave every cached entry valid.
	if _, err := Delete(servers[5].Addr(), dataset.Tuple{ID: 1 << 42, Vec: center.Clone()}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := QueryDetailed(a.Addr(), "knn", params, 2, 0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("no-op delete invalidated a cached entry")
	}

	// A real insert must invalidate at every initiator, and the refreshed
	// answers must carry the new tuple.
	tup := dataset.Tuple{ID: 1 << 42, Vec: center.Clone()}
	if _, err := Insert(servers[5].Addr(), tup, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Server{a, b} {
		res, err := QueryDetailed(s.Addr(), "knn", params, 2, 0, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHit {
			t.Fatalf("peer %s served a cached answer across a mutation", s.cfg.ID)
		}
		if !hasID(res.Answers, tup.ID) {
			t.Fatalf("peer %s: refreshed answer misses the inserted tuple", s.cfg.ID)
		}
		again, err := QueryDetailed(s.Addr(), "knn", params, 2, 0, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !again.CacheHit {
			t.Fatalf("peer %s: cache did not refill after invalidation", s.cfg.ID)
		}
	}
}
