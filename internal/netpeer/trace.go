package netpeer

import (
	"errors"

	"ripple/internal/overlay"
	"ripple/internal/trace"
	"ripple/internal/wire"
)

// tracer accumulates the spans one traced wire.Call produces at this peer:
// span IDs for the traversals it initiates (derived with the same
// deterministic hash the in-process engines use, so all three runtimes name
// identical trees), loss records for unrecoverable links, and the spans its
// reachable children convergecast back. A nil *tracer is the untraced path
// and no-ops everywhere.
type tracer struct {
	call  *wire.Call
	seq   int // per-parent traversal counter, advanced for lost links too
	spans []trace.Span
}

func newTracer(call *wire.Call) *tracer {
	if !call.Traced {
		return nil
	}
	return &tracer{call: call}
}

// child assigns the span ID for the next traversal to peer `to`. Must be
// called exactly once per relevant link attempt, in traversal order.
func (t *tracer) child(to string) uint64 {
	if t == nil {
		return 0
	}
	t.seq++
	return trace.ChildID(t.call.SpanID, to, t.seq)
}

// lost records a traversal abandoned after retry exhaustion.
func (t *tracer) lost(id uint64, peer string, sub overlay.Region, childR, arrive, attempt int, err error) {
	if t == nil {
		return
	}
	outcome := trace.OutcomeDrop
	switch {
	case isTimeout(err):
		outcome = trace.OutcomeTimeout
	case errors.Is(err, errInjectedCrash):
		outcome = trace.OutcomeCrash
	}
	t.spans = append(t.spans, trace.Span{
		ID: id, Parent: t.call.SpanID, Peer: peer, Region: sub,
		Phase: phaseOf(childR), R: childR, Depth: t.call.SpanDepth + 1,
		Arrive: arrive, Attempt: attempt, Outcome: outcome,
	})
}

// lostVia records a failed recovery dispatch: replica `via` was asked to act
// for dead peer `peer` and did not answer either. The span ID is derived from
// the failed primary span by the caller, mirroring the in-process engines.
func (t *tracer) lostVia(id uint64, peer, via string, sub overlay.Region, childR, arrive, attempt int, err error) {
	if t == nil {
		return
	}
	outcome := trace.OutcomeDrop
	switch {
	case isTimeout(err):
		outcome = trace.OutcomeTimeout
	case errors.Is(err, errInjectedCrash):
		outcome = trace.OutcomeCrash
	}
	t.spans = append(t.spans, trace.Span{
		ID: id, Parent: t.call.SpanID, Peer: peer, Via: via, Region: sub,
		Phase: phaseOf(childR), R: childR, Depth: t.call.SpanDepth + 1,
		Arrive: arrive, Attempt: attempt, Outcome: outcome,
	})
}

// absorbRecovered takes the convergecast spans of a replica that served a
// dead primary's subtree, marking the child's own span as recovered via that
// replica (the acting peer recorded itself as the primary with OutcomeOK;
// only this caller knows the traversal failed over).
func (t *tracer) absorbRecovered(childID uint64, spans []trace.Span, retries int, via string) {
	if t == nil {
		return
	}
	for i := range spans {
		if spans[i].ID == childID {
			spans[i].Attempt = retries
			spans[i].Outcome = trace.OutcomeRecovered
			spans[i].Via = via
		}
	}
	t.spans = append(t.spans, spans...)
}

// absorb takes a reachable child's convergecast spans, stamping the retry
// count onto the child's own span (the child recorded itself with attempt 0;
// only this caller knows how many attempts the traversal cost).
func (t *tracer) absorb(childID uint64, spans []trace.Span, retries int) {
	if t == nil {
		return
	}
	for i := range spans {
		if spans[i].ID == childID {
			spans[i].Attempt = retries
		}
	}
	t.spans = append(t.spans, spans...)
}

// finish prepends this peer's own span and attaches everything to the reply.
func (t *tracer) finish(reply *wire.Reply, peer string, stateTuples, answerTuples int) {
	if t == nil {
		return
	}
	self := trace.Span{
		ID: t.call.SpanID, Parent: t.call.SpanParent, Peer: peer,
		Region: t.call.Restrict, Phase: phaseOf(t.call.R), R: t.call.R,
		Depth: t.call.SpanDepth, Arrive: t.call.Hops, Outcome: trace.OutcomeOK,
		StateTuples: stateTuples, AnswerTuples: answerTuples,
	}
	reply.Spans = append([]trace.Span{self}, t.spans...)
}

// childContext fills a downstream call's trace-context header.
func (t *tracer) childContext(call *wire.Call, id uint64) {
	if t == nil {
		return
	}
	call.Traced = true
	call.SpanID = id
	call.SpanParent = t.call.SpanID
	call.SpanDepth = t.call.SpanDepth + 1
}

func phaseOf(r int) string {
	if r > 0 {
		return trace.PhaseSlow
	}
	return trace.PhaseFast
}
