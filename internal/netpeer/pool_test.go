package netpeer

import (
	"testing"
	"time"

	gonet "net"

	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/metrics"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/topk"
)

// poolOpts is quietOpts plus a metrics registry, so tests can observe the
// dial/reuse/eviction counters. Multiplexing is disabled: these tests pin
// the behaviour of the legacy pooled path, which muxed deployments only use
// toward remotes that negotiated down.
func poolOpts(t *testing.T, reg *metrics.Registry) Options {
	t.Helper()
	o := quietOpts(t)
	o.Metrics = reg
	o.DisableMux = true
	return o
}

func topkParams(t *testing.T, d, k int) []byte {
	t.Helper()
	params, err := topk.WireCodec{}.EncodeParams(topk.UniformLinear(d), k)
	if err != nil {
		t.Fatal(err)
	}
	return params
}

// TestConnPoolReusesAcrossSequentialQueries: after the first query has
// warmed every link, subsequent queries must ride pooled connections — the
// dial counter stays flat while the reuse counter grows.
func TestConnPoolReusesAcrossSequentialQueries(t *testing.T) {
	reg := metrics.New()
	net := midas.Build(8, midas.Options{Dims: 2, Seed: 3})
	overlay.Load(net, dataset.Uniform(500, 2, 5))
	servers, _, err := DeployOpts(net, poolOpts(t, reg), topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	params := topkParams(t, 2, 64)
	dials := reg.Counter("ripple_netpeer_dials_total", "")
	reuses := reg.Counter("ripple_netpeer_conn_reuses_total", "")

	if _, _, err := Query(servers[0].Addr(), "topk", params, 2, 1<<20); err != nil {
		t.Fatal(err)
	}
	warmDials := dials.Value()
	if warmDials == 0 {
		t.Fatal("first query dialled nothing")
	}
	for i := 0; i < 3; i++ {
		if _, _, err := Query(servers[0].Addr(), "topk", params, 2, 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	if got := dials.Value(); got != warmDials {
		t.Fatalf("repeat queries dialled %d fresh connections (total %d, warm %d)",
			got-warmDials, got, warmDials)
	}
	if reuses.Value() == 0 {
		t.Fatal("repeat queries never reused a pooled connection")
	}
}

// TestConnPoolIdleExpiry: parked connections must be reaped once they sit
// idle past IdleConnTimeout, and counted as evictions.
func TestConnPoolIdleExpiry(t *testing.T) {
	reg := metrics.New()
	opts := poolOpts(t, reg)
	opts.IdleConnTimeout = 30 * time.Millisecond
	net := midas.Build(4, midas.Options{Dims: 2, Seed: 5})
	overlay.Load(net, dataset.Uniform(200, 2, 6))
	servers, _, err := DeployOpts(net, opts, topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	if _, _, err := Query(servers[0].Addr(), "topk", topkParams(t, 2, 64), 2, 1<<20); err != nil {
		t.Fatal(err)
	}
	parked := 0
	for _, s := range servers {
		s.pool.mu.Lock()
		for _, conns := range s.pool.idle {
			parked += len(conns)
		}
		s.pool.mu.Unlock()
	}
	if parked == 0 {
		t.Fatal("no connections parked after a broadcast query")
	}
	evictions := reg.Counter("ripple_netpeer_pool_evictions_total", "")
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		left := 0
		for _, s := range servers {
			s.pool.mu.Lock()
			for _, conns := range s.pool.idle {
				left += len(conns)
			}
			s.pool.mu.Unlock()
		}
		if left == 0 {
			if evictions.Value() < int64(parked) {
				t.Fatalf("reaped %d conns but recorded %d evictions", parked, evictions.Value())
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("idle connections were never reaped")
}

// TestExchangeRecoversStaleConn: a connection parked across a peer restart is
// dead; the next exchange must detect it, count it stale, and complete on a
// fresh dial within the same attempt — no retry spent.
func TestExchangeRecoversStaleConn(t *testing.T) {
	reg := metrics.New()
	srvB := NewServerOpts(Config{ID: "b", Zone: overlay.Whole(2)}, quietOpts(t), topk.WireCodec{})
	addr, err := srvB.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	caller := NewServerOpts(Config{ID: "a", Zone: overlay.Whole(2)}, poolOpts(t, reg), topk.WireCodec{})
	defer caller.pool.close()
	call := buildCall("topk", topkParams(t, 2, 3), 2, 0, false, overlay.Region{})

	if _, err := caller.exchange(addr, call); err != nil {
		t.Fatalf("warm-up exchange: %v", err)
	}
	if n := caller.pool.idleCount(addr); n != 1 {
		t.Fatalf("parked %d conns, want 1", n)
	}

	if err := srvB.Close(); err != nil {
		t.Fatal(err)
	}
	srvB2 := NewServerOpts(Config{ID: "b2", Zone: overlay.Whole(2)}, quietOpts(t), topk.WireCodec{})
	if _, err := srvB2.Start(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srvB2.Close()

	if _, err := caller.exchange(addr, call); err != nil {
		t.Fatalf("exchange across restart: %v", err)
	}
	if v := reg.Counter("ripple_netpeer_stale_conns_total", "").Value(); v != 1 {
		t.Fatalf("stale conns = %d, want 1", v)
	}
	if v := reg.Counter("ripple_netpeer_dials_total", "").Value(); v != 2 {
		t.Fatalf("dials = %d, want 2 (warm-up + recovery)", v)
	}
	if v := reg.Counter("ripple_netpeer_conn_reuses_total", "").Value(); v != 1 {
		t.Fatalf("reuses = %d, want 1", v)
	}
}

// TestConnPoolCap: the pool never parks more than MaxIdleConnsPerPeer per
// remote; overflow is closed and counted.
func TestConnPoolCap(t *testing.T) {
	reg := metrics.New()
	p := newConnPool(2, time.Minute, reg.Counter("ev", "overflow evictions"))
	defer p.close()
	srv := NewServerOpts(Config{ID: "x", Zone: overlay.Whole(1)}, quietOpts(t), topk.WireCodec{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 4; i++ {
		conn, err := dialForTest(addr)
		if err != nil {
			t.Fatal(err)
		}
		p.put(addr, conn)
	}
	if n := p.idleCount(addr); n != 2 {
		t.Fatalf("parked %d, want cap 2", n)
	}
	if v := reg.Counter("ev", "").Value(); v != 2 {
		t.Fatalf("evictions = %d, want 2", v)
	}
}

// TestPooledDeploymentSurvivesInjectedFaults: connection kills and drops from
// the fault injector must not corrupt the pool — queries keep succeeding and
// the answers stay exact once retries recover the links.
func TestPooledDeploymentSurvivesInjectedFaults(t *testing.T) {
	ts := dataset.Uniform(800, 2, 9)
	net := midas.Build(8, midas.Options{Dims: 2, Seed: 13})
	overlay.Load(net, ts)
	opts := quietOpts(t)
	opts.Faults = faults.New(faults.Config{Seed: 21, DropRate: 0.3})
	servers, _, err := DeployOpts(net, opts, topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	f := topk.UniformLinear(2)
	params := topkParams(t, 2, 48)
	want := topk.Brute(ts, f, 48)
	for i := 0; i < 5; i++ {
		res, err := QueryDetailed(servers[0].Addr(), "topk", params, 2, 1<<20, 0)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res.Partial() {
			// A drop rate of 0.3 with retries can still exhaust a link; a
			// partial answer is legal, just not comparable to Brute.
			continue
		}
		got := topk.Select(res.Answers, f, 48)
		for j := range want {
			if got[j].ID != want[j].ID {
				t.Fatalf("query %d: rank %d = %v, want %v", i, j, got[j], want[j])
			}
		}
	}
}

// TestDisableConnPool: the opt-out restores fresh dials per RPC.
func TestDisableConnPool(t *testing.T) {
	reg := metrics.New()
	opts := poolOpts(t, reg)
	opts.DisableConnPool = true
	net := midas.Build(4, midas.Options{Dims: 2, Seed: 17})
	overlay.Load(net, dataset.Uniform(200, 2, 3))
	servers, _, err := DeployOpts(net, opts, topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	params := topkParams(t, 2, 3)
	for i := 0; i < 2; i++ {
		if _, _, err := Query(servers[0].Addr(), "topk", params, 2, 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	if v := reg.Counter("ripple_netpeer_conn_reuses_total", "").Value(); v != 0 {
		t.Fatalf("pool disabled but %d reuses recorded", v)
	}
	for _, s := range servers {
		if s.pool != nil {
			t.Fatal("pool allocated despite DisableConnPool")
		}
	}
}

// TestClientReusesConnection: the initiator-side Client holds one warm
// connection across queries and recovers transparently when the peer
// restarts underneath it.
func TestClientReusesConnection(t *testing.T) {
	ts := dataset.Uniform(400, 2, 11)
	net := midas.Build(4, midas.Options{Dims: 2, Seed: 19})
	overlay.Load(net, ts)
	servers, _, err := DeployOpts(net, quietOpts(t), topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	f := topk.UniformLinear(2)
	params := topkParams(t, 2, 6)
	want := topk.Brute(ts, f, 6)

	// Sequential client: this test pins the warm-single-connection behaviour
	// (mux clients hold a muxConn instead; see mux_test.go).
	c := NewSequentialClient(servers[0].Addr(), 5*time.Second)
	defer c.Close()
	for i := 0; i < 3; i++ {
		answers, stats, err := c.Query("topk", params, 2, 1<<20)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		got := topk.Select(answers, f, 6)
		for j := range want {
			if got[j].ID != want[j].ID {
				t.Fatalf("query %d rank %d: %v, want %v", i, j, got[j], want[j])
			}
		}
		if stats.PeersReached() == 0 {
			t.Fatalf("query %d: bogus stats %+v", i, stats)
		}
	}
	if c.conn == nil {
		t.Fatal("client holds no warm connection after queries")
	}

	// Restart the initiator peer on the same address: the client's warm
	// connection is now stale and the next query must redial transparently.
	addr := servers[0].Addr()
	cfg := Config{ID: "restarted", Zone: overlay.Whole(2)}
	if err := servers[0].Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServerOpts(cfg, quietOpts(t), topk.WireCodec{})
	if _, err := srv2.Start(addr); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	defer srv2.Close()
	if _, _, err := c.Query("topk", params, 2, 0); err != nil {
		t.Fatalf("query across restart: %v", err)
	}
}

// dialForTest opens a raw client connection for pool plumbing tests.
func dialForTest(addr string) (gonet.Conn, error) { return gonet.Dial("tcp", addr) }

func BenchmarkRoundTripPooled(b *testing.B)    { benchRoundTrip(b, false) }
func BenchmarkRoundTripFreshDial(b *testing.B) { benchRoundTrip(b, true) }

// benchRoundTrip measures one full query round trip (r=1 over a small
// deployment) with and without connection pooling.
func benchRoundTrip(b *testing.B, disablePool bool) {
	net := midas.Build(8, midas.Options{Dims: 2, Seed: 23})
	overlay.Load(net, dataset.Uniform(500, 2, 29))
	// Mux disabled on servers and client alike: this pair benchmarks the
	// legacy transport (pooled vs fresh dial); the mux benchmarks live in
	// mux_test.go.
	opts := Options{
		Logf:            func(string, ...interface{}) {},
		DisableConnPool: disablePool,
		DisableMux:      true,
	}
	servers, _, err := DeployOpts(net, opts, topk.WireCodec{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	params, err := topk.WireCodec{}.EncodeParams(topk.UniformLinear(2), 32)
	if err != nil {
		b.Fatal(err)
	}
	c := NewSequentialClient(servers[0].Addr(), 0)
	defer c.Close()
	if _, _, err := c.Query("topk", params, 2, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Query("topk", params, 2, 1); err != nil {
			b.Fatal(err)
		}
	}
}
