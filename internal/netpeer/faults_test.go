package netpeer

import (
	"fmt"
	"net"
	"reflect"
	"sort"
	"testing"
	"time"

	"ripple/internal/dataset"
	"ripple/internal/faults"
	"ripple/internal/geom"
	"ripple/internal/midas"
	"ripple/internal/overlay"
	"ripple/internal/topk"
	"ripple/internal/wire"
)

// third returns the i-th vertical third of the unit square.
func third(i int) overlay.Region {
	return overlay.FromRect(geom.Rect{
		Lo: geom.Point{float64(i) / 3, 0},
		Hi: geom.Point{float64(i+1) / 3, 1},
	})
}

// tupleIn places a tuple in the middle of the i-th third.
func tupleIn(id uint64, i int, y float64) dataset.Tuple {
	return dataset.Tuple{ID: id, Vec: geom.Point{(float64(i) + 0.5) / 3, y}}
}

// hangListener accepts connections and never replies: a peer that dies
// mid-protocol, after the TCP handshake but before answering.
func hangListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { close(done); ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				<-done
				conn.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

// TestPeerHangsMidQuery deploys initiator A and live child B plus a
// hung pseudo-peer H that accepts the call and never replies. The query
// must return within the deadline budget (no hang), carry every tuple of
// the surviving peers, and report H's region as failed with the loss
// classified as a timeout.
func TestPeerHangsMidQuery(t *testing.T) {
	opts := Options{
		DialTimeout: 500 * time.Millisecond,
		CallTimeout: 400 * time.Millisecond,
		Retry:       RetryPolicy{MaxRetries: 1, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond, Jitter: 0.2},
		Logf:        t.Logf,
	}
	b := NewServerOpts(Config{ID: "B", Zone: third(1), Tuples: []dataset.Tuple{tupleIn(10, 1, 0.2), tupleIn(11, 1, 0.8)}}, opts, topk.WireCodec{})
	bAddr, err := b.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	hAddr := hangListener(t)

	a := NewServerOpts(Config{
		ID:     "A",
		Zone:   third(0),
		Tuples: []dataset.Tuple{tupleIn(1, 0, 0.3), tupleIn(2, 0, 0.6)},
		Links: []LinkSpec{
			{ID: "B", Addr: bAddr, Region: third(1)},
			{ID: "H", Addr: hAddr, Region: third(2)},
		},
	}, opts, topk.WireCodec{})
	aAddr, err := a.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	f := topk.UniformLinear(2)
	params, _ := (topk.WireCodec{}).EncodeParams(f, 10)
	for _, r := range []int{0, 8} {
		start := time.Now()
		res, err := QueryDetailed(aAddr, "topk", params, 2, r, 10*time.Second)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		elapsed := time.Since(start)
		// Budget: (1 + MaxRetries) attempts of CallTimeout plus slack.
		if elapsed > 3*time.Second {
			t.Fatalf("r=%d: query hung for %v on a dead-mid-protocol peer", r, elapsed)
		}
		if !res.Partial() {
			t.Fatalf("r=%d: hung subtree not marked partial", r)
		}
		if res.Stats.TimedOut == 0 {
			t.Fatalf("r=%d: loss not classified as timeout: %+v", r, res.Stats)
		}
		if len(res.FailedRegions) != 1 || !reflect.DeepEqual(res.FailedRegions[0], third(2)) {
			t.Fatalf("r=%d: failed regions %v, want [%v]", r, res.FailedRegions, third(2))
		}
		ids := answerIDs(res.Answers)
		if !reflect.DeepEqual(ids, []uint64{1, 2, 10, 11}) {
			t.Fatalf("r=%d: surviving answers %v, want all of A and B", r, ids)
		}
	}
}

func answerIDs(ts []dataset.Tuple) []uint64 {
	ids := make([]uint64, 0, len(ts))
	for _, a := range ts {
		ids = append(ids, a.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestRetryExhaustion pins the retry budget: with a 100% drop rate, a link
// is attempted exactly 1+MaxRetries times and then declared lost.
func TestRetryExhaustion(t *testing.T) {
	opts := quietOpts(t)
	opts.Retry = RetryPolicy{MaxRetries: 3, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond, Jitter: 0.5}
	opts.Faults = faults.New(faults.Config{Seed: 5, DropRate: 1})

	b := NewServerOpts(Config{ID: "B", Zone: third(1), Tuples: []dataset.Tuple{tupleIn(10, 1, 0.5)}}, opts, topk.WireCodec{})
	bAddr, err := b.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a := NewServerOpts(Config{
		ID:     "A",
		Zone:   third(0),
		Tuples: []dataset.Tuple{tupleIn(1, 0, 0.5)},
		Links:  []LinkSpec{{ID: "B", Addr: bAddr, Region: third(1)}},
	}, opts, topk.WireCodec{})
	aAddr, err := a.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	params, _ := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(2), 5)
	res, err := QueryDetailed(aAddr, "topk", params, 2, 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RPCFailures != 1 || res.Stats.Retries != 3 {
		t.Fatalf("failures=%d retries=%d, want 1 failure after exactly 3 retries", res.Stats.RPCFailures, res.Stats.Retries)
	}
	if !res.Partial() || len(res.FailedRegions) != 1 {
		t.Fatalf("exhausted link must be a recorded partial loss: %+v", res)
	}
	if ids := answerIDs(res.Answers); !reflect.DeepEqual(ids, []uint64{1}) {
		t.Fatalf("answers %v, want just the initiator's", ids)
	}
}

// TestZeroRateInjectorIsTransparent runs the same query with no injector and
// with a rate-0 injector: answers and every counter must be identical.
func TestZeroRateInjectorIsTransparent(t *testing.T) {
	ts := dataset.NBA(2000, 5)
	net := midas.Build(16, midas.Options{Dims: 6, Seed: 11})
	overlay.Load(net, ts)

	run := func(opts Options) (*QueryResult, error) {
		servers, addrs, err := DeployOpts(net, opts, topk.WireCodec{})
		if err != nil {
			return nil, err
		}
		defer func() {
			for _, s := range servers {
				s.Close()
			}
		}()
		params, _ := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(6), 10)
		w := net.Peers()[2]
		return QueryDetailed(addrs[w.ID()], "topk", params, 6, 2, 10*time.Second)
	}

	plain, err := run(quietOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	injected := quietOpts(t)
	injected.Faults = faults.New(faults.Config{Seed: 99})
	withInj, err := run(injected)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(answerIDs(plain.Answers), answerIDs(withInj.Answers)) {
		t.Fatal("rate-0 injector changed the answer set")
	}
	if plain.Stats.QueryMsgs != withInj.Stats.QueryMsgs ||
		plain.Stats.StateMsgs != withInj.Stats.StateMsgs ||
		plain.Stats.Latency != withInj.Stats.Latency ||
		plain.Stats.TuplesSent != withInj.Stats.TuplesSent {
		t.Fatalf("rate-0 injector changed the costs: %+v vs %+v", plain.Stats, withInj.Stats)
	}
	if withInj.Partial() || withInj.Stats.RPCFailures != 0 || withInj.Stats.Retries != 0 {
		t.Fatalf("rate-0 injector produced failures: %+v", withInj.Stats)
	}
}

// TestInjectedDeploymentIsDeterministic: two fresh deployments of the same
// overlay under the same fault seed must lose the same links and return the
// same answers, even though ports and goroutine interleavings differ —
// decisions are keyed by stable peer IDs, not addresses.
func TestInjectedDeploymentIsDeterministic(t *testing.T) {
	ts := dataset.NBA(2000, 5)
	net := midas.Build(20, midas.Options{Dims: 6, Seed: 13})
	overlay.Load(net, ts)

	run := func() *QueryResult {
		opts := quietOpts(t)
		opts.Retry.MaxRetries = 1
		opts.Faults = faults.New(faults.Config{Seed: 31, DropRate: 0.25})
		servers, addrs, err := DeployOpts(net, opts, topk.WireCodec{})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			for _, s := range servers {
				s.Close()
			}
		}()
		params, _ := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(6), 10)
		w := net.Peers()[0]
		res, err := QueryDetailed(addrs[w.ID()], "topk", params, 6, 0, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	one, two := run(), run()
	if !reflect.DeepEqual(answerIDs(one.Answers), answerIDs(two.Answers)) {
		t.Fatal("same seed, different surviving answers")
	}
	if one.Stats.RPCFailures != two.Stats.RPCFailures || one.Partial() != two.Partial() ||
		len(one.FailedRegions) != len(two.FailedRegions) {
		t.Fatalf("same seed, different failures: %+v vs %+v", one.Stats, two.Stats)
	}
	if !one.Partial() {
		t.Fatal("25% drop over 20 peers should have lost at least one link (tune the seed if not)")
	}
}

// TestCrashInjection: with every outgoing link crashing (work done, reply
// lost), the initiator still answers with its own tuples and reports the
// losses.
func TestCrashInjection(t *testing.T) {
	ts := dataset.NBA(1000, 3)
	net := midas.Build(8, midas.Options{Dims: 6, Seed: 17})
	overlay.Load(net, ts)
	opts := quietOpts(t)
	opts.Retry.MaxRetries = 0
	opts.Faults = faults.New(faults.Config{Seed: 1, CrashRate: 1})
	servers, addrs, err := DeployOpts(net, opts, topk.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	params, _ := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(6), 10)
	w := net.Peers()[0]
	res, err := QueryDetailed(addrs[w.ID()], "topk", params, 6, 0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial() || res.Stats.RPCFailures == 0 {
		t.Fatalf("crashed children must be recorded: %+v", res.Stats)
	}
	if len(res.Answers) == 0 {
		t.Fatal("initiator's own answers must survive a fully crashing neighbourhood")
	}
}

// TestBackoffJitterBounds pins the retry delay schedule: exponential growth
// from BackoffBase, capped at BackoffMax, spread by ±Jitter.
func TestBackoffJitterBounds(t *testing.T) {
	p := RetryPolicy{MaxRetries: 8, BackoffBase: 10 * time.Millisecond, BackoffMax: 200 * time.Millisecond, Jitter: 0.2}
	if p.Backoff(0, 0.5) != 0 {
		t.Fatal("attempt 0 must not wait")
	}
	for attempt := 1; attempt <= 8; attempt++ {
		base := 10 * time.Millisecond << (attempt - 1)
		if base > 200*time.Millisecond {
			base = 200 * time.Millisecond
		}
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		for _, u := range []float64{0, 0.25, 0.5, 0.75, 0.999999} {
			d := p.Backoff(attempt, u)
			if d < lo || d > hi {
				t.Fatalf("attempt %d u=%.2f: backoff %v outside [%v, %v]", attempt, u, d, lo, hi)
			}
		}
		if got0, got1 := p.Backoff(attempt, 0.0), p.Backoff(attempt, 1.0); got0 >= got1 {
			t.Fatalf("attempt %d: jitter not spreading (u=0 -> %v, u~1 -> %v)", attempt, got0, got1)
		}
	}
	// No jitter: exact exponential with cap.
	exact := RetryPolicy{BackoffBase: 10 * time.Millisecond, BackoffMax: 40 * time.Millisecond}
	for attempt, want := range map[int]time.Duration{1: 10 * time.Millisecond, 2: 20 * time.Millisecond, 3: 40 * time.Millisecond, 4: 40 * time.Millisecond, 10: 40 * time.Millisecond} {
		if got := exact.Backoff(attempt, 0.7); got != want {
			t.Fatalf("attempt %d: %v, want %v", attempt, got, want)
		}
	}
}

// TestCloseUnblocksHungClients: a client that stalls mid-frame (or sits
// idle) must not block Close — the serving goroutines are torn down and
// Close returns promptly.
func TestCloseUnblocksHungClients(t *testing.T) {
	opts := quietOpts(t)
	opts.IdleTimeout = 30 * time.Second // deadline alone must not be what saves Close
	s := NewServerOpts(Config{ID: "X", Zone: third(0), Tuples: []dataset.Tuple{tupleIn(1, 0, 0.5)}}, opts, topk.WireCodec{})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// One idle client, one stalled mid-frame.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if _, err := stalled.Write([]byte{0, 0}); err != nil { // half a length prefix, then silence
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let serveConn enter its reads

	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on hung client connections")
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestMidFrameStallIsDropped: a connection that goes quiet in the middle of
// a frame is cut at the read deadline, while an idle one survives it.
func TestMidFrameStallIsDropped(t *testing.T) {
	opts := quietOpts(t)
	opts.IdleTimeout = 100 * time.Millisecond
	s := NewServerOpts(Config{ID: "X", Zone: third(0), Tuples: []dataset.Tuple{tupleIn(1, 0, 0.5)}}, opts, topk.WireCodec{})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if _, err := stalled.Write([]byte{0, 0}); err != nil {
		t.Fatal(err)
	}
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := stalled.Read(make([]byte, 1)); err == nil {
		t.Fatal("mid-frame stall was not dropped")
	}

	// An idle connection outlives several deadline periods and still works.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	time.Sleep(350 * time.Millisecond)
	params, _ := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(2), 1)
	if err := writeCallRead(idle, params); err != nil {
		t.Fatalf("idle connection was cut by the per-message deadline: %v", err)
	}
}

// writeCallRead performs one raw RPC on an existing connection.
func writeCallRead(conn net.Conn, params []byte) error {
	call := &wire.Call{QueryType: "topk", Params: params, Restrict: overlay.Whole(2), R: 0}
	if err := wire.WriteMessage(conn, call); err != nil {
		return err
	}
	var reply wire.Reply
	return wire.ReadMessage(conn, &reply)
}

func TestLinkSpecKeyFallsBackToAddr(t *testing.T) {
	if (LinkSpec{ID: "p3", Addr: "1.2.3.4:9"}).key() != "p3" {
		t.Fatal("key must prefer the peer ID")
	}
	if (LinkSpec{Addr: "1.2.3.4:9"}).key() != "1.2.3.4:9" {
		t.Fatal("key must fall back to the address for old configs")
	}
}

func TestRemoteErrorFormat(t *testing.T) {
	e := &RemoteError{Peer: "007", Msg: "panic: boom"}
	if got := e.Error(); got != fmt.Sprintf("peer %s: %s", "007", "panic: boom") {
		t.Fatalf("RemoteError.Error() = %q", got)
	}
}
