package netpeer

// Server half of the multiplexed transport: a per-connection demux. One
// reader (the connection's serving goroutine) decodes tagged call frames
// and admits them into a bounded worker pool; MaxConcurrentCalls workers
// process calls concurrently; one writer interleaves reply frames back in
// whatever order subtrees complete. Admission control bounds per-connection
// load the way the Rainbow-skip-graph line of work bounds per-node load:
// past MaxConcurrentCalls executing and MaxCallQueue waiting, a call is
// rejected immediately with wire.Overloaded instead of stalling the socket,
// and the caller's retry backoff becomes the load-shedding signal. Immediate
// rejection is also what breaks the distributed deadlock two mutually
// saturated peers would otherwise weave: neither ever blocks the other's
// reader.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ripple/internal/wire"
)

// muxJob is one admitted call waiting for a worker.
type muxJob struct {
	stream uint32
	call   *wire.Call
	enq    time.Time
}

// muxOut is one reply frame queued for the writer.
type muxOut struct {
	stream uint32
	reply  *wire.Reply
}

// serveMux serves one multiplexed connection. The sniff in serveConn has
// consumed the hello's magic; the version word follows. The negotiated
// version is acked back (0 when this server has multiplexing disabled, in
// which case the connection continues under the sequential protocol).
func (s *Server) serveMux(conn net.Conn, cr *countingReader) {
	ver, err := wire.ReadMuxVersion(cr) // still under the sniff's read deadline
	if err != nil {
		return
	}
	ack := uint32(wire.MuxVersion)
	if s.opts.DisableMux || ver < ack {
		ack = 0 // min of the two sides; a client offering 0 gets sequential
	}
	if err := conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout)); err != nil {
		return
	}
	if err := wire.WriteMuxHello(conn, ack); err != nil {
		return
	}
	if err := conn.SetWriteDeadline(time.Time{}); err != nil {
		return
	}
	if ack == 0 {
		s.serveSequential(conn, cr, [4]byte{}, false)
		return
	}

	queue := make(chan muxJob, s.opts.MaxCallQueue)
	// Buffer for every possible in-flight reply plus one oversized-frame
	// report, so neither workers nor the reader ever block on the writer.
	out := make(chan muxOut, s.opts.MaxConcurrentCalls+s.opts.MaxCallQueue+1)
	var dead atomic.Bool

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		s.muxWriter(conn, out, &dead)
	}()

	var workers sync.WaitGroup
	for i := 0; i < s.opts.MaxConcurrentCalls; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for j := range queue {
				if dead.Load() { // connection gone: the reply has no reader
					s.ins.inflight.Dec()
					continue
				}
				s.ins.queueWait.Observe(time.Since(j.enq).Seconds())
				out <- muxOut{stream: j.stream, reply: s.safeProcess(j.call)}
				s.ins.inflight.Dec()
			}
		}()
	}

	// Reader: this goroutine. Same idle semantics as the sequential loop —
	// a connection idle between frames re-arms its deadline, one stalled
	// mid-frame is dropped.
	for {
		var call wire.Call
		cr.n = 0
		if err := conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout)); err != nil {
			break
		}
		stream, err := wire.ReadMuxFrame(cr, &call)
		if err != nil {
			if isTimeout(err) && cr.n == 0 {
				select {
				case <-s.closed:
				default:
					continue // idle client: re-arm the deadline
				}
			}
			var fse *wire.FrameSizeError
			if errors.As(err, &fse) {
				// The frame body is unread and the stream cannot be resynced:
				// report the rejection on the stream, then drop the conn.
				out <- muxOut{stream: stream, reply: &wire.Reply{Error: fse.Error()}}
			}
			break
		}
		j := muxJob{stream: stream, call: &call, enq: time.Now()}
		select {
		case queue <- j:
			s.ins.inflight.Inc()
		default:
			s.ins.overloads.Inc()
			out <- muxOut{stream: stream, reply: &wire.Reply{Error: wire.Overloaded(
				fmt.Sprintf("peer %s: %d calls executing and %d queued",
					s.peerID(), s.opts.MaxConcurrentCalls, s.opts.MaxCallQueue))}}
		}
	}

	// Orderly teardown: stop admitting, let workers drain the queue (skipping
	// actual processing once the connection is dead), then release the writer.
	dead.Store(true)
	close(queue)
	workers.Wait()
	close(out)
	writerWG.Wait()
}

// muxWriter is the only goroutine that writes reply frames on the
// connection. On a write failure it marks the connection dead and closes it
// — unblocking the reader — then keeps draining so workers can always hand
// off their replies.
func (s *Server) muxWriter(conn net.Conn, out <-chan muxOut, dead *atomic.Bool) {
	failed := false
	for f := range out {
		if failed {
			continue
		}
		if err := s.writeMuxReply(conn, f); err != nil {
			failed = true
			dead.Store(true)
			conn.Close()
		}
	}
}

// writeMuxReply sends one reply frame under the write deadline.
func (s *Server) writeMuxReply(conn net.Conn, f muxOut) error {
	if err := conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout)); err != nil {
		return err
	}
	if err := wire.WriteMuxFrame(conn, f.stream, f.reply); err != nil {
		return err
	}
	return conn.SetWriteDeadline(time.Time{})
}

// peerID returns the server's stable identity under the config lock.
func (s *Server) peerID() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cfg.ID
}
