package netpeer

import (
	"ripple/internal/metrics"
	"ripple/internal/storage"
)

// instruments caches the server's metric handles so the RPC path never pays
// a registry lookup. Every handle is nil when Options.Metrics is nil — the
// instruments stay callable (internal/metrics is nil-safe) and an unmetered
// server pays only a nil check per event.
type instruments struct {
	dials           *metrics.Counter
	dialFailures    *metrics.Counter
	connReuses      *metrics.Counter
	evictions       *metrics.Counter
	staleConns      *metrics.Counter
	retries         *metrics.Counter
	deadlines       *metrics.Counter
	backoffs        *metrics.Counter
	lostLinks       *metrics.Counter
	recovered       *metrics.Counter
	failovers       *metrics.Counter
	unrecoverable   *metrics.Counter
	muxStreams      *metrics.Counter
	muxFallbacks    *metrics.Counter
	overloads       *metrics.Counter
	inflight        *metrics.Gauge
	storageTuples   *metrics.Gauge
	storageNodes    *metrics.Gauge
	storageHeight   *metrics.Gauge
	rpcSeconds      *metrics.Histogram
	fanout          *metrics.Histogram
	queueWait       *metrics.Histogram
	recoverySeconds *metrics.Histogram
}

// setStorage publishes the peer's primary-share storage statistics. Called at
// construction and after every wire mutation, so the gauges track the live
// share rather than the deployment-time snapshot.
func (ins *instruments) setStorage(st storage.Stats) {
	ins.storageTuples.Set(int64(st.Len))
	ins.storageNodes.Set(int64(st.Nodes))
	ins.storageHeight.Set(int64(st.Height))
}

func newInstruments(r *metrics.Registry) instruments {
	return instruments{
		dials:           r.Counter("ripple_netpeer_dials_total", "TCP dial attempts to neighbour peers"),
		dialFailures:    r.Counter("ripple_netpeer_dial_failures_total", "TCP dial attempts that failed"),
		connReuses:      r.Counter("ripple_netpeer_conn_reuses_total", "RPCs served over a pooled connection instead of a fresh dial"),
		evictions:       r.Counter("ripple_netpeer_pool_evictions_total", "pooled connections closed by cap, idle expiry, or shutdown"),
		staleConns:      r.Counter("ripple_netpeer_stale_conns_total", "pooled connections found dead mid-RPC and replaced by a fresh dial"),
		retries:         r.Counter("ripple_netpeer_retries_total", "extra RPC attempts spent recovering links"),
		deadlines:       r.Counter("ripple_netpeer_deadline_timeouts_total", "RPC attempts abandoned on a dial/call deadline"),
		backoffs:        r.Counter("ripple_netpeer_backoffs_total", "backoff sleeps taken before retries"),
		lostLinks:       r.Counter("ripple_netpeer_lost_links_total", "links abandoned after retry exhaustion"),
		recovered:       r.Counter("ripple_netpeer_recovered_regions_total", "lost subtrees served by a zone replica of the dead primary"),
		failovers:       r.Counter("ripple_netpeer_replica_failovers_total", "replica dispatches attempted during recovery, successful or not"),
		unrecoverable:   r.Counter("ripple_netpeer_unrecoverable_regions_total", "lost subtrees no replica could serve (the region lands in FailedRegions)"),
		muxStreams:      r.Counter("ripple_netpeer_mux_streams_total", "calls multiplexed as streams onto a shared peer connection"),
		muxFallbacks:    r.Counter("ripple_netpeer_mux_fallbacks_total", "remotes that negotiated down to the sequential protocol"),
		overloads:       r.Counter("ripple_netpeer_overload_rejections_total", "calls rejected by admission control (worker pool and queue full)"),
		inflight:        r.Gauge("ripple_netpeer_inflight_streams", "multiplexed calls admitted and not yet replied to"),
		storageTuples:   r.Gauge("ripple_storage_tuples", "tuples in the peer's primary-share store"),
		storageNodes:    r.Gauge("ripple_storage_index_nodes", "index nodes in the primary-share store (0 for the scan baseline)"),
		storageHeight:   r.Gauge("ripple_storage_index_height", "index tree height of the primary-share store (0 for the scan baseline)"),
		rpcSeconds:      r.Histogram("ripple_netpeer_rpc_seconds", "wall-clock duration of one RPC attempt", metrics.DefLatencyBuckets),
		fanout:          r.Histogram("ripple_netpeer_fanout", "relevant links contacted per processed call", metrics.LinearBuckets(0, 1, 8)),
		queueWait:       r.Histogram("ripple_netpeer_queue_wait_seconds", "time an admitted call waited for a mux worker", metrics.DefLatencyBuckets),
		recoverySeconds: r.Histogram("ripple_netpeer_recovery_seconds", "wall-clock time from losing a link to a replica serving its region", metrics.DefLatencyBuckets),
	}
}
