package netpeer

import (
	"ripple/internal/metrics"
)

// instruments caches the server's metric handles so the RPC path never pays
// a registry lookup. Every handle is nil when Options.Metrics is nil — the
// instruments stay callable (internal/metrics is nil-safe) and an unmetered
// server pays only a nil check per event.
type instruments struct {
	dials        *metrics.Counter
	dialFailures *metrics.Counter
	connReuses   *metrics.Counter
	evictions    *metrics.Counter
	staleConns   *metrics.Counter
	retries      *metrics.Counter
	deadlines    *metrics.Counter
	backoffs     *metrics.Counter
	lostLinks    *metrics.Counter
	rpcSeconds   *metrics.Histogram
	fanout       *metrics.Histogram
}

func newInstruments(r *metrics.Registry) instruments {
	return instruments{
		dials:        r.Counter("ripple_netpeer_dials_total", "TCP dial attempts to neighbour peers"),
		dialFailures: r.Counter("ripple_netpeer_dial_failures_total", "TCP dial attempts that failed"),
		connReuses:   r.Counter("ripple_netpeer_conn_reuses_total", "RPCs served over a pooled connection instead of a fresh dial"),
		evictions:    r.Counter("ripple_netpeer_pool_evictions_total", "pooled connections closed by cap, idle expiry, or shutdown"),
		staleConns:   r.Counter("ripple_netpeer_stale_conns_total", "pooled connections found dead mid-RPC and replaced by a fresh dial"),
		retries:      r.Counter("ripple_netpeer_retries_total", "extra RPC attempts spent recovering links"),
		deadlines:    r.Counter("ripple_netpeer_deadline_timeouts_total", "RPC attempts abandoned on a dial/call deadline"),
		backoffs:     r.Counter("ripple_netpeer_backoffs_total", "backoff sleeps taken before retries"),
		lostLinks:    r.Counter("ripple_netpeer_lost_links_total", "links abandoned after retry exhaustion"),
		rpcSeconds:   r.Histogram("ripple_netpeer_rpc_seconds", "wall-clock duration of one RPC attempt", metrics.DefLatencyBuckets),
		fanout:       r.Histogram("ripple_netpeer_fanout", "relevant links contacted per processed call", metrics.LinearBuckets(0, 1, 8)),
	}
}
