package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	ts := Uniform(200, 4, 1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("round trip size %d, want %d", len(got), len(ts))
	}
	for i := range ts {
		if got[i].ID != ts[i].ID || !got[i].Vec.Equal(ts[i].Vec) {
			t.Fatalf("tuple %d: %v != %v", i, got[i], ts[i])
		}
	}
}

func TestReadCSVHeaderDetection(t *testing.T) {
	in := "id,x0,x1\n1,0.5,0.25\n2,0.1,0.9\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 1 || got[1].Vec[1] != 0.9 {
		t.Fatalf("parsed %v", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"short row":       "1\n",
		"bad id mid-file": "1,0.5\nxx,0.5\n",
		"bad coord":       "1,zz\n",
		"out of range":    "1,1.5\n",
		"ragged dims":     "1,0.5,0.5\n2,0.5\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestNormalizeWithInvert(t *testing.T) {
	ts := []Tuple{
		{ID: 1, Vec: []float64{10, 5}},
		{ID: 2, Vec: []float64{20, 15}},
		{ID: 3, Vec: []float64{30, 10}},
	}
	Normalize(ts, []bool{false, true})
	// Dim 0: min-max to [0,1); dim 1 inverted: raw max (15) becomes best (0).
	if ts[0].Vec[0] != 0 {
		t.Fatalf("dim0 min should normalise to 0, got %v", ts[0].Vec[0])
	}
	if ts[1].Vec[1] > 1e-12 {
		t.Fatalf("dim1 raw max should invert to ~0, got %v", ts[1].Vec[1])
	}
	if ts[0].Vec[1] <= ts[2].Vec[1] {
		t.Fatal("inversion order wrong")
	}
}
