// Package dataset defines the tuple model and reproduces the three workloads
// of the paper's evaluation (§7.1):
//
//   - NBA: 22,000 six-dimensional player-statistics tuples (1946–2009). The
//     original comes from basketball-reference.com; we synthesise a
//     statistically equivalent dataset (skewed, positively correlated
//     per-game stats) — see DESIGN.md §4 for the substitution argument.
//   - MIRFLICKR: 1M five-bucket MPEG-7 edge-histogram descriptors compared
//     under L1; we synthesise clustered histograms on the 5-simplex.
//   - SYNTH: the paper's own synthetic recipe — clustered multidimensional
//     data in [0,1]^D around zipfian-popular cluster centres.
//
// All vectors are normalised to [0,1]^d with the convention that LOWER values
// are better (the skyline convention used throughout the repository); the NBA
// generator therefore stores inverted per-game statistics, so a dominant
// player sits near the origin.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ripple/internal/geom"
)

// Tuple is a data item: an identifier plus its position in the normalised
// domain [0,1]^d, which doubles as its DHT key.
type Tuple struct {
	ID  uint64
	Vec geom.Point
}

// String renders the tuple for demos and error messages.
func (t Tuple) String() string { return fmt.Sprintf("#%d%v", t.ID, t.Vec) }

// Dims returns the dimensionality of the dataset's domain, or 0 when empty.
func Dims(ts []Tuple) int {
	if len(ts) == 0 {
		return 0
	}
	return len(ts[0].Vec)
}

// clamp01 keeps coordinates strictly inside [0,1) so half-open zones always
// cover every tuple.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return math.Nextafter(1, 0)
	}
	return v
}

// NBA synthesises the paper's NBA workload: n six-dimensional tuples of
// per-game statistics (points, rebounds, assists, blocks, steals, minutes).
// Real per-game data has two features the queries are sensitive to, which
// the generator reproduces: stats are positively correlated through a latent
// "ability" variable, and a tiny elite of star players leads essentially
// every category at once, so top-k thresholds sit very close to the domain's
// best corner and the skyline is small — that is what makes RIPPLE's pruning
// (and the competitors') effective on this workload. Pass n=0 for the
// paper's 22,000 tuples.
func NBA(n int, seed int64) []Tuple {
	if n <= 0 {
		n = 22000
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Tuple, n)
	for i := range out {
		elite := rng.Float64() < 0.02
		ability := rng.Float64()
		var vec geom.Point
		if elite {
			// Stars: near-maximal, tightly correlated stats across the
			// board; the best of them sit by the origin after inversion.
			vec = make(geom.Point, 6)
			for j := range vec {
				s := 0.56 + 0.29*ability + 0.11*rng.NormFloat64()
				vec[j] = clamp01(1 - s)
			}
		} else {
			// The body of the league: moderate, noisier, still correlated.
			a := ability * ability
			stat := func(weight float64) float64 {
				s := 0.6*weight*a + 0.08*math.Abs(rng.NormFloat64()) + 0.05*rng.Float64()
				return clamp01(1 - s)
			}
			vec = geom.Point{
				stat(1.00), // points
				stat(0.85), // rebounds
				stat(0.80), // assists
				stat(0.60), // blocks
				stat(0.70), // steals
				stat(1.05), // minutes
			}
		}
		out[i] = Tuple{ID: uint64(i), Vec: vec}
	}
	normalizeMinMax(out)
	return out
}

// normalizeMinMax rescales every dimension to span [0,1) exactly, as the
// paper's attribute normalisation does. This matters for rank queries: the
// per-category leader lands on the lower domain boundary (coordinate 0), so
// boundary zones can be dominated and pruned.
func normalizeMinMax(ts []Tuple) {
	if len(ts) == 0 {
		return
	}
	d := len(ts[0].Vec)
	for j := 0; j < d; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, t := range ts {
			if t.Vec[j] < lo {
				lo = t.Vec[j]
			}
			if t.Vec[j] > hi {
				hi = t.Vec[j]
			}
		}
		if hi <= lo {
			continue
		}
		for _, t := range ts {
			t.Vec[j] = clamp01((t.Vec[j] - lo) / (hi - lo))
		}
	}
}

// MIRFlickr synthesises the paper's image workload: n five-bucket edge
// histograms. Histograms are generated around cluster prototypes on the
// 4-simplex (components sum to 1) so that L1 relevance/diversity structure
// resembles content-based image descriptors. Pass n=0 for the paper's 10^6.
func MIRFlickr(n int, seed int64) []Tuple {
	if n <= 0 {
		n = 1000000
	}
	const d, protos = 5, 64
	rng := rand.New(rand.NewSource(seed))
	prototypes := make([]geom.Point, protos)
	for i := range prototypes {
		prototypes[i] = randomSimplexPoint(rng, d)
	}
	out := make([]Tuple, n)
	for i := range out {
		proto := prototypes[rng.Intn(protos)]
		vec := make(geom.Point, d)
		sum := 0.0
		for j := range vec {
			v := proto[j] + 0.08*math.Abs(rng.NormFloat64())
			vec[j] = v
			sum += v
		}
		for j := range vec {
			vec[j] = clamp01(vec[j] / sum)
		}
		out[i] = Tuple{ID: uint64(i), Vec: vec}
	}
	return out
}

func randomSimplexPoint(rng *rand.Rand, d int) geom.Point {
	p := make(geom.Point, d)
	sum := 0.0
	for i := range p {
		p[i] = rng.ExpFloat64()
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// SynthConfig parameterises the paper's SYNTH generator.
type SynthConfig struct {
	N       int     // number of tuples (paper: 1,000,000)
	Dims    int     // dimensionality (paper: 2..10)
	Centers int     // number of cluster centres (paper: 50,000)
	Skew    float64 // zipfian skewness of centre popularity (paper: 0.1)
	Spread  float64 // gaussian spread of points around their centre
	Seed    int64
}

// Synth generates the paper's clustered synthetic dataset: points drawn
// around Centers uniformly placed cluster centres whose popularity follows a
// zipfian distribution with the given skew.
func Synth(cfg SynthConfig) []Tuple {
	if cfg.N <= 0 {
		cfg.N = 1000000
	}
	if cfg.Centers <= 0 {
		cfg.Centers = 50000
	}
	if cfg.Dims <= 0 {
		cfg.Dims = 5
	}
	if cfg.Spread <= 0 {
		cfg.Spread = 0.03
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([]geom.Point, cfg.Centers)
	for i := range centers {
		c := make(geom.Point, cfg.Dims)
		for j := range c {
			c[j] = rng.Float64()
		}
		centers[i] = c
	}
	pick := newZipfPicker(cfg.Centers, cfg.Skew)
	out := make([]Tuple, cfg.N)
	for i := range out {
		c := centers[pick(rng)]
		vec := make(geom.Point, cfg.Dims)
		for j := range vec {
			vec[j] = clamp01(c[j] + cfg.Spread*rng.NormFloat64())
		}
		out[i] = Tuple{ID: uint64(i), Vec: vec}
	}
	return out
}

// newZipfPicker returns a sampler over {0..n-1} with P(rank i) proportional
// to 1/(i+1)^skew. The standard library's rand.Zipf requires skew > 1, while
// the paper uses 0.1, hence the explicit inverse-CDF implementation.
func newZipfPicker(n int, skew float64) func(*rand.Rand) int {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), skew)
		cdf[i] = sum
	}
	return func(rng *rand.Rand) int {
		u := rng.Float64() * sum
		return sort.SearchFloat64s(cdf, u)
	}
}

// Uniform generates n uniformly distributed tuples; used by tests as the
// simplest possible workload.
func Uniform(n, dims int, seed int64) []Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Tuple, n)
	for i := range out {
		vec := make(geom.Point, dims)
		for j := range vec {
			vec[j] = rng.Float64()
		}
		out[i] = Tuple{ID: uint64(i), Vec: vec}
	}
	return out
}

// Sample returns k distinct tuples drawn uniformly from ts; used to pick
// query points for diversification workloads.
func Sample(ts []Tuple, k int, seed int64) []Tuple {
	if k > len(ts) {
		k = len(ts)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(ts))[:k]
	out := make([]Tuple, k)
	for i, j := range idx {
		out[i] = ts[j]
	}
	return out
}
