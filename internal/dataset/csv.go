package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV loads tuples from CSV: one row per tuple, first column the tuple
// ID, remaining columns the coordinates. Coordinates must already be
// normalised to [0,1) (see ReadRawCSV / Normalize for raw data). A header
// row is detected by a non-numeric first field and skipped.
func ReadCSV(r io.Reader) ([]Tuple, error) {
	return readCSV(r, false)
}

// ReadRawCSV loads tuples whose coordinates are raw attribute values (any
// finite float); callers normally follow with Normalize.
func ReadRawCSV(r io.Reader) ([]Tuple, error) {
	return readCSV(r, true)
}

func readCSV(r io.Reader, allowRaw bool) ([]Tuple, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var out []Tuple
	dims := -1
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv read: %w", err)
		}
		line++
		if len(rec) < 2 {
			return nil, fmt.Errorf("dataset: csv line %d: need id plus at least one coordinate", line)
		}
		id, err := strconv.ParseUint(rec[0], 10, 64)
		if err != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("dataset: csv line %d: bad id %q", line, rec[0])
		}
		if dims == -1 {
			dims = len(rec) - 1
		} else if len(rec)-1 != dims {
			return nil, fmt.Errorf("dataset: csv line %d: %d coordinates, want %d", line, len(rec)-1, dims)
		}
		vec := make([]float64, dims)
		for i := 0; i < dims; i++ {
			v, err := strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv line %d: bad coordinate %q", line, rec[i+1])
			}
			if !allowRaw && (v < 0 || v >= 1) {
				return nil, fmt.Errorf("dataset: csv line %d: coordinate %v outside [0,1); normalise first", line, v)
			}
			vec[i] = v
		}
		out = append(out, Tuple{ID: id, Vec: vec})
	}
	return out, nil
}

// WriteCSV writes tuples in the format ReadCSV accepts, with a header.
func WriteCSV(w io.Writer, ts []Tuple) error {
	cw := csv.NewWriter(w)
	d := Dims(ts)
	header := make([]string, d+1)
	header[0] = "id"
	for i := 0; i < d; i++ {
		header[i+1] = fmt.Sprintf("x%d", i)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: csv write: %w", err)
	}
	rec := make([]string, d+1)
	for _, t := range ts {
		rec[0] = strconv.FormatUint(t.ID, 10)
		for i, v := range t.Vec {
			rec[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: csv write: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Normalize min-max rescales raw-valued tuples into [0,1)^d in place (the
// paper's attribute normalisation), with an optional per-dimension invert
// mask for attributes where higher raw values are better (the repository
// convention is lower-is-better).
func Normalize(ts []Tuple, invert []bool) {
	normalizeMinMax(ts)
	if invert == nil {
		return
	}
	for _, t := range ts {
		for j, inv := range invert {
			if inv && j < len(t.Vec) {
				t.Vec[j] = clamp01(1 - t.Vec[j])
			}
		}
	}
}
