package dataset

import (
	"math"
	"math/rand"
	"testing"

	"ripple/internal/geom"
)

func inUnitCube(t *testing.T, ts []Tuple, wantDims int) {
	t.Helper()
	cube := geom.UnitCube(wantDims)
	for _, tp := range ts {
		if len(tp.Vec) != wantDims {
			t.Fatalf("tuple %d has %d dims, want %d", tp.ID, len(tp.Vec), wantDims)
		}
		if !cube.Contains(tp.Vec) {
			t.Fatalf("tuple %d = %v outside [0,1)^%d", tp.ID, tp.Vec, wantDims)
		}
	}
}

func TestNBAShape(t *testing.T) {
	ts := NBA(0, 1)
	if len(ts) != 22000 {
		t.Fatalf("default NBA size = %d, want 22000", len(ts))
	}
	inUnitCube(t, ts, 6)
	if Dims(ts) != 6 {
		t.Fatalf("Dims = %d", Dims(ts))
	}
}

func TestNBADeterministicAndSeedSensitive(t *testing.T) {
	a := NBA(100, 42)
	b := NBA(100, 42)
	c := NBA(100, 43)
	for i := range a {
		if !a[i].Vec.Equal(b[i].Vec) {
			t.Fatal("same seed must reproduce identical data")
		}
	}
	same := true
	for i := range a {
		if !a[i].Vec.Equal(c[i].Vec) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should produce different data")
	}
}

func TestNBACorrelation(t *testing.T) {
	// Points and minutes (dims 0 and 5) must be positively correlated in
	// "goodness" — i.e. the stored inverted values correlate positively too.
	ts := NBA(5000, 7)
	var sx, sy, sxx, syy, sxy float64
	for _, tp := range ts {
		x, y := tp.Vec[0], tp.Vec[5]
		sx, sy, sxx, syy, sxy = sx+x, sy+y, sxx+x*x, syy+y*y, sxy+x*y
	}
	n := float64(len(ts))
	cov := sxy/n - (sx/n)*(sy/n)
	corr := cov / math.Sqrt((sxx/n-(sx/n)*(sx/n))*(syy/n-(sy/n)*(sy/n)))
	if corr < 0.3 {
		t.Fatalf("points/minutes correlation = %v, want clearly positive", corr)
	}
}

func TestMIRFlickrHistograms(t *testing.T) {
	ts := MIRFlickr(2000, 3)
	inUnitCube(t, ts, 5)
	for _, tp := range ts[:100] {
		sum := 0.0
		for _, v := range tp.Vec {
			sum += v
		}
		if math.Abs(sum-1) > 0.01 {
			t.Fatalf("histogram %v sums to %v, want ~1", tp.Vec, sum)
		}
	}
}

func TestSynthShapeAndClustering(t *testing.T) {
	cfg := SynthConfig{N: 5000, Dims: 3, Centers: 10, Skew: 0.1, Seed: 5}
	ts := Synth(cfg)
	if len(ts) != 5000 {
		t.Fatalf("size = %d", len(ts))
	}
	inUnitCube(t, ts, 3)
	// Clustered data must be denser than uniform: the mean nearest-neighbor
	// distance over a sample should be far below the uniform expectation.
	sample := Sample(ts, 200, 1)
	sumNN := 0.0
	for i, a := range sample {
		best := math.Inf(1)
		for j, b := range sample {
			if i == j {
				continue
			}
			if d := geom.L2.Dist(a.Vec, b.Vec); d < best {
				best = d
			}
		}
		sumNN += best
	}
	uni := Uniform(5000, 3, 5)
	usample := Sample(uni, 200, 1)
	sumUni := 0.0
	for i, a := range usample {
		best := math.Inf(1)
		for j, b := range usample {
			if i == j {
				continue
			}
			if d := geom.L2.Dist(a.Vec, b.Vec); d < best {
				best = d
			}
		}
		sumUni += best
	}
	if sumNN >= sumUni {
		t.Fatalf("clustered NN dist %v not below uniform %v", sumNN/200, sumUni/200)
	}
}

func TestSynthDefaultsApplied(t *testing.T) {
	ts := Synth(SynthConfig{N: 10, Seed: 1})
	if Dims(ts) != 5 {
		t.Fatalf("default dims = %d, want 5", Dims(ts))
	}
}

func TestZipfPickerSkew(t *testing.T) {
	// With skew > 0, low ranks must be sampled more often than high ranks.
	pick := newZipfPicker(1000, 0.9)
	rng := newTestRand(9)
	counts := make([]int, 1000)
	for i := 0; i < 50000; i++ {
		counts[pick(rng)]++
	}
	lo, hi := 0, 0
	for i := 0; i < 100; i++ {
		lo += counts[i]
	}
	for i := 900; i < 1000; i++ {
		hi += counts[i]
	}
	if lo <= hi {
		t.Fatalf("zipf skew missing: first decile %d <= last decile %d", lo, hi)
	}
}

func TestSampleDistinct(t *testing.T) {
	ts := Uniform(50, 2, 2)
	s := Sample(ts, 10, 3)
	if len(s) != 10 {
		t.Fatalf("sample size = %d", len(s))
	}
	seen := map[uint64]bool{}
	for _, tp := range s {
		if seen[tp.ID] {
			t.Fatalf("duplicate tuple %d in sample", tp.ID)
		}
		seen[tp.ID] = true
	}
	if got := Sample(ts, 100, 3); len(got) != 50 {
		t.Fatalf("oversized sample should clamp to population, got %d", len(got))
	}
}

func TestDimsEmpty(t *testing.T) {
	if Dims(nil) != 0 {
		t.Fatal("Dims(nil) must be 0")
	}
}

// newTestRand keeps the zipf test independent of generator internals.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
