package sim

import (
	"math"
	"testing"
)

func TestStatsTouchAndCongestion(t *testing.T) {
	var s Stats
	s.Touch("a")
	s.Touch("b")
	s.Touch("a")
	if s.QueryMsgs != 3 {
		t.Fatalf("QueryMsgs = %d, want 3", s.QueryMsgs)
	}
	if s.PeersReached() != 2 {
		t.Fatalf("PeersReached = %d, want 2", s.PeersReached())
	}
	if s.MaxPerPeer() != 2 {
		t.Fatalf("MaxPerPeer = %d, want 2", s.MaxPerPeer())
	}
	if s.Congestion() != 3 {
		t.Fatalf("Congestion = %v, want 3", s.Congestion())
	}
}

func TestStatsAddSequentialComposition(t *testing.T) {
	a := &Stats{Latency: 5, StateMsgs: 2, TuplesSent: 10}
	a.Touch("x")
	b := &Stats{Latency: 7, AnswerMsgs: 3, TuplesSent: 4}
	b.Touch("x")
	b.Touch("y")
	a.Add(b)
	if a.Latency != 12 {
		t.Fatalf("Latency = %d, want 12 (sequential rounds add)", a.Latency)
	}
	if a.QueryMsgs != 3 || a.PeersReached() != 2 {
		t.Fatalf("merge wrong: msgs=%d peers=%d", a.QueryMsgs, a.PeersReached())
	}
	if a.TuplesSent != 14 || a.StateMsgs != 2 || a.AnswerMsgs != 3 {
		t.Fatalf("counter merge wrong: %+v", a)
	}
	if a.Messages() != 3+2+3 {
		t.Fatalf("Messages = %d", a.Messages())
	}
}

func TestAggregateObserve(t *testing.T) {
	var agg Aggregate
	for _, l := range []int{2, 4, 6} {
		s := &Stats{Latency: l, TuplesSent: l}
		s.Touch("p")
		agg.Observe(s)
	}
	if agg.N != 3 {
		t.Fatalf("N = %d", agg.N)
	}
	if math.Abs(agg.MeanLatency-4) > 1e-9 {
		t.Fatalf("MeanLatency = %v, want 4", agg.MeanLatency)
	}
	if agg.MaxLatency != 6 {
		t.Fatalf("MaxLatency = %d, want 6", agg.MaxLatency)
	}
	if math.Abs(agg.MeanCongestion-1) > 1e-9 {
		t.Fatalf("MeanCongestion = %v, want 1", agg.MeanCongestion)
	}
}

func TestAggregateMerge(t *testing.T) {
	var a, b Aggregate
	for _, l := range []int{2, 2} {
		a.Observe(&Stats{Latency: l})
	}
	for _, l := range []int{8, 8, 8, 8, 8, 8} {
		b.Observe(&Stats{Latency: l})
	}
	a.Merge(b)
	if a.N != 8 {
		t.Fatalf("N = %d", a.N)
	}
	// Weighted mean: (2*2 + 6*8)/8 = 6.5
	if math.Abs(a.MeanLatency-6.5) > 1e-9 {
		t.Fatalf("MeanLatency = %v, want 6.5", a.MeanLatency)
	}
	if a.MaxLatency != 8 {
		t.Fatalf("MaxLatency = %d", a.MaxLatency)
	}
	var empty Aggregate
	before := a
	a.Merge(empty)
	if a.N != before.N || a.MeanLatency != before.MeanLatency {
		t.Fatal("merging an empty aggregate must be a no-op")
	}
}

func TestPercentileLatency(t *testing.T) {
	var a Aggregate
	for i := 1; i <= 100; i++ {
		a.Observe(&Stats{Latency: i})
	}
	if got := a.PercentileLatency(0); got != 1 {
		t.Fatalf("p0 = %d", got)
	}
	if got := a.PercentileLatency(1); got != 100 {
		t.Fatalf("p100 = %d", got)
	}
	if got := a.PercentileLatency(0.5); got < 49 || got > 52 {
		t.Fatalf("p50 = %d", got)
	}
	var empty Aggregate
	if empty.PercentileLatency(0.5) != 0 {
		t.Fatal("empty aggregate percentile should be 0")
	}
}

func TestStatsAddMergesFailureCounters(t *testing.T) {
	a := &Stats{RPCFailures: 1, Retries: 2, TimedOut: 1}
	b := &Stats{RPCFailures: 2, Retries: 3, Partial: true}
	a.Add(b)
	if a.RPCFailures != 3 || a.Retries != 5 || a.TimedOut != 1 {
		t.Fatalf("failure counters merged wrong: %+v", a)
	}
	if !a.Partial {
		t.Fatal("Partial must be sticky under Add")
	}
	a.Add(&Stats{})
	if !a.Partial {
		t.Fatal("Partial lost after merging a clean phase")
	}
}

func TestCongestionPerPeerHandComputed(t *testing.T) {
	// Three queries over a 4-peer overlay: query 1 touches p0,p1,p2; query 2
	// touches p0 twice (a duplicate delivery) plus p3; query 3 touches p0
	// only. Per-query congestion is its message count — 3, 3, 1 — so the
	// batch mean is 7/3.
	q1 := &Stats{}
	q1.Touch("p0")
	q1.Touch("p1")
	q1.Touch("p2")
	q2 := &Stats{}
	q2.Touch("p0")
	q2.Touch("p0")
	q2.Touch("p3")
	q3 := &Stats{}
	q3.Touch("p0")

	if q2.MaxPerPeer() != 2 || q2.PeersReached() != 2 {
		t.Fatalf("duplicate delivery not visible: max=%d peers=%d", q2.MaxPerPeer(), q2.PeersReached())
	}
	var agg Aggregate
	for _, s := range []*Stats{q1, q2, q3} {
		agg.Observe(s)
	}
	if math.Abs(agg.MeanCongestion-7.0/3) > 1e-9 {
		t.Fatalf("MeanCongestion = %v, want 7/3", agg.MeanCongestion)
	}
	// Folding the batch into one record sums per-peer load: p0 carried
	// 1+2+1 = 4 of the 7 messages.
	total := &Stats{}
	total.Add(q1)
	total.Add(q2)
	total.Add(q3)
	if total.QueryMsgs != 7 || total.PeersReached() != 4 || total.MaxPerPeer() != 4 {
		t.Fatalf("batch fold wrong: msgs=%d peers=%d max=%d",
			total.QueryMsgs, total.PeersReached(), total.MaxPerPeer())
	}
}

func TestAggregateFailureMetrics(t *testing.T) {
	var agg Aggregate
	for i := 0; i < 4; i++ {
		s := &Stats{}
		if i == 0 {
			s.Partial = true
			s.RPCFailures = 2
			s.Retries = 1
		}
		agg.Observe(s)
	}
	if math.Abs(agg.PartialRate-0.25) > 1e-9 {
		t.Fatalf("PartialRate = %v, want 0.25", agg.PartialRate)
	}
	if math.Abs(agg.MeanFailures-0.5) > 1e-9 {
		t.Fatalf("MeanFailures = %v, want 0.5", agg.MeanFailures)
	}
	if math.Abs(agg.MeanRetries-0.25) > 1e-9 {
		t.Fatalf("MeanRetries = %v, want 0.25", agg.MeanRetries)
	}
}
