package sim

import (
	"math"
	"testing"
)

func TestStatsTouchAndCongestion(t *testing.T) {
	var s Stats
	s.Touch("a")
	s.Touch("b")
	s.Touch("a")
	if s.QueryMsgs != 3 {
		t.Fatalf("QueryMsgs = %d, want 3", s.QueryMsgs)
	}
	if s.PeersReached() != 2 {
		t.Fatalf("PeersReached = %d, want 2", s.PeersReached())
	}
	if s.MaxPerPeer() != 2 {
		t.Fatalf("MaxPerPeer = %d, want 2", s.MaxPerPeer())
	}
	if s.Congestion() != 3 {
		t.Fatalf("Congestion = %v, want 3", s.Congestion())
	}
}

func TestStatsAddSequentialComposition(t *testing.T) {
	a := &Stats{Latency: 5, StateMsgs: 2, TuplesSent: 10}
	a.Touch("x")
	b := &Stats{Latency: 7, AnswerMsgs: 3, TuplesSent: 4}
	b.Touch("x")
	b.Touch("y")
	a.Add(b)
	if a.Latency != 12 {
		t.Fatalf("Latency = %d, want 12 (sequential rounds add)", a.Latency)
	}
	if a.QueryMsgs != 3 || a.PeersReached() != 2 {
		t.Fatalf("merge wrong: msgs=%d peers=%d", a.QueryMsgs, a.PeersReached())
	}
	if a.TuplesSent != 14 || a.StateMsgs != 2 || a.AnswerMsgs != 3 {
		t.Fatalf("counter merge wrong: %+v", a)
	}
	if a.Messages() != 3+2+3 {
		t.Fatalf("Messages = %d", a.Messages())
	}
}

func TestAggregateObserve(t *testing.T) {
	var agg Aggregate
	for _, l := range []int{2, 4, 6} {
		s := &Stats{Latency: l, TuplesSent: l}
		s.Touch("p")
		agg.Observe(s)
	}
	if agg.N != 3 {
		t.Fatalf("N = %d", agg.N)
	}
	if math.Abs(agg.MeanLatency-4) > 1e-9 {
		t.Fatalf("MeanLatency = %v, want 4", agg.MeanLatency)
	}
	if agg.MaxLatency != 6 {
		t.Fatalf("MaxLatency = %d, want 6", agg.MaxLatency)
	}
	if math.Abs(agg.MeanCongestion-1) > 1e-9 {
		t.Fatalf("MeanCongestion = %v, want 1", agg.MeanCongestion)
	}
}

func TestAggregateMerge(t *testing.T) {
	var a, b Aggregate
	for _, l := range []int{2, 2} {
		a.Observe(&Stats{Latency: l})
	}
	for _, l := range []int{8, 8, 8, 8, 8, 8} {
		b.Observe(&Stats{Latency: l})
	}
	a.Merge(b)
	if a.N != 8 {
		t.Fatalf("N = %d", a.N)
	}
	// Weighted mean: (2*2 + 6*8)/8 = 6.5
	if math.Abs(a.MeanLatency-6.5) > 1e-9 {
		t.Fatalf("MeanLatency = %v, want 6.5", a.MeanLatency)
	}
	if a.MaxLatency != 8 {
		t.Fatalf("MaxLatency = %d", a.MaxLatency)
	}
	var empty Aggregate
	before := a
	a.Merge(empty)
	if a.N != before.N || a.MeanLatency != before.MeanLatency {
		t.Fatal("merging an empty aggregate must be a no-op")
	}
}

func TestPercentileLatency(t *testing.T) {
	var a Aggregate
	for i := 1; i <= 100; i++ {
		a.Observe(&Stats{Latency: i})
	}
	if got := a.PercentileLatency(0); got != 1 {
		t.Fatalf("p0 = %d", got)
	}
	if got := a.PercentileLatency(1); got != 100 {
		t.Fatalf("p100 = %d", got)
	}
	if got := a.PercentileLatency(0.5); got < 49 || got > 52 {
		t.Fatalf("p50 = %d", got)
	}
	var empty Aggregate
	if empty.PercentileLatency(0.5) != 0 {
		t.Fatal("empty aggregate percentile should be 0")
	}
}
