// Package sim provides the measurement kernel of the RIPPLE reproduction:
// per-query cost accounting (latency in hops, messages, congestion, tuples
// transferred) and aggregation across query batches, mirroring the metrics of
// the paper's experimental evaluation (§7.1).
//
// The paper evaluates RIPPLE in a simulated overlay, charging one hop per
// forwarded query message; fast-mode fan-out proceeds in parallel (latency is
// the maximum over branches) whereas slow-mode iteration is sequential
// (latency is the sum over iterations). Query engines in this repository
// perform that structural accounting and record the results here.
package sim

import (
	"fmt"
	"sort"
)

// Stats accumulates the cost of processing a single query.
type Stats struct {
	// Latency is the number of hops until the last peer receives the query,
	// under the paper's accounting (responses are not charged to latency).
	Latency int
	// QueryMsgs counts query messages processed by peers, including the
	// initiator's own processing. With n uniformly issued queries, the
	// average number of queries processed per peer equals this value, so it
	// is exactly the paper's "congestion" metric on a per-query basis.
	QueryMsgs int
	// StateMsgs counts local-state responses sent upstream (slow/ripple).
	StateMsgs int
	// AnswerMsgs counts local-answer messages sent to the initiator.
	AnswerMsgs int
	// TuplesSent counts tuples shipped over the network in states/answers,
	// the paper's communication-overhead notion.
	TuplesSent int

	// RPCFailures counts link traversals abandoned after retry exhaustion
	// AND replica failover (when replication is on): each one is a subtree
	// whose answers are missing.
	RPCFailures int
	// Recovered counts lost link traversals whose restriction region a zone
	// replica served on the dead primary's behalf: subtrees that would have
	// been holes in the answer without replication.
	Recovered int
	// Failovers counts replica dispatches attempted during recovery
	// (successful or not); Recovered ≤ Failovers.
	Failovers int
	// Retries counts extra delivery attempts spent recovering flaky links
	// (successful or not) beyond each link's first try.
	Retries int
	// TimedOut is the subset of RPCFailures that hit the per-call deadline
	// rather than failing immediately (dead peer vs hung peer).
	TimedOut int
	// Partial marks that the answer set may be incomplete because at least
	// one subtree was lost. The query still terminated and every surviving
	// peer's answers are present.
	Partial bool

	reached map[string]int
}

// Touch records that the peer with the given id processed one query message.
func (s *Stats) Touch(peerID string) {
	if s.reached == nil {
		s.reached = make(map[string]int)
	}
	s.reached[peerID]++
	s.QueryMsgs++
}

// PeersReached returns the number of distinct peers that processed the query.
func (s *Stats) PeersReached() int { return len(s.reached) }

// MaxPerPeer returns the largest number of times any single peer processed
// the query; values above 1 indicate duplicate delivery, which RIPPLE's
// restriction areas are meant to prevent.
func (s *Stats) MaxPerPeer() int {
	max := 0
	for _, c := range s.reached {
		if c > max {
			max = c
		}
	}
	return max
}

// Congestion returns the per-query congestion contribution (see QueryMsgs).
func (s *Stats) Congestion() float64 { return float64(s.QueryMsgs) }

// Messages returns the total number of messages of any kind.
func (s *Stats) Messages() int { return s.QueryMsgs + s.StateMsgs + s.AnswerMsgs }

// Add folds the costs of another query phase into s, taking the sequential
// composition of latencies (other ran after s). Used by multi-round
// algorithms such as the greedy diversification driver, where each round's
// hops add up.
func (s *Stats) Add(other *Stats) {
	s.Latency += other.Latency
	s.StateMsgs += other.StateMsgs
	s.AnswerMsgs += other.AnswerMsgs
	s.TuplesSent += other.TuplesSent
	s.QueryMsgs += other.QueryMsgs
	s.RPCFailures += other.RPCFailures
	s.Recovered += other.Recovered
	s.Failovers += other.Failovers
	s.Retries += other.Retries
	s.TimedOut += other.TimedOut
	s.Partial = s.Partial || other.Partial
	for id, c := range other.reached {
		if s.reached == nil {
			s.reached = make(map[string]int)
		}
		s.reached[id] += c
	}
}

// String summarises s for logs and demos. Failure accounting only appears
// when something actually failed, so fault-free output is unchanged.
func (s *Stats) String() string {
	base := fmt.Sprintf("latency=%d hops, congestion=%d msgs, peers=%d, tuples=%d",
		s.Latency, s.QueryMsgs, s.PeersReached(), s.TuplesSent)
	if s.RPCFailures == 0 && s.Retries == 0 && s.Recovered == 0 && s.Failovers == 0 && !s.Partial {
		return base
	}
	out := fmt.Sprintf("%s, failures=%d (timeouts=%d), retries=%d, partial=%t",
		base, s.RPCFailures, s.TimedOut, s.Retries, s.Partial)
	if s.Recovered > 0 || s.Failovers > 0 {
		out += fmt.Sprintf(", recovered=%d (failovers=%d)", s.Recovered, s.Failovers)
	}
	return out
}

// Aggregate summarises a batch of per-query Stats, as every figure of the
// paper reports averages over large query batches.
type Aggregate struct {
	N               int
	MeanLatency     float64
	MaxLatency      int
	MeanCongestion  float64
	MeanMessages    float64
	MeanTuplesSent  float64
	MeanPeersUnique float64
	MeanFailures    float64
	MeanRecovered   float64
	MeanFailovers   float64
	MeanRetries     float64
	// PartialRate is the fraction of queries whose answer set was marked
	// partial — the batch-level availability metric of the fault experiments.
	PartialRate float64

	latencies []int
}

// Observe folds one query's stats into the aggregate.
func (a *Aggregate) Observe(s *Stats) {
	a.N++
	n := float64(a.N)
	a.MeanLatency += (float64(s.Latency) - a.MeanLatency) / n
	a.MeanCongestion += (s.Congestion() - a.MeanCongestion) / n
	a.MeanMessages += (float64(s.Messages()) - a.MeanMessages) / n
	a.MeanTuplesSent += (float64(s.TuplesSent) - a.MeanTuplesSent) / n
	a.MeanPeersUnique += (float64(s.PeersReached()) - a.MeanPeersUnique) / n
	a.MeanFailures += (float64(s.RPCFailures) - a.MeanFailures) / n
	a.MeanRecovered += (float64(s.Recovered) - a.MeanRecovered) / n
	a.MeanFailovers += (float64(s.Failovers) - a.MeanFailovers) / n
	a.MeanRetries += (float64(s.Retries) - a.MeanRetries) / n
	partial := 0.0
	if s.Partial {
		partial = 1
	}
	a.PartialRate += (partial - a.PartialRate) / n
	if s.Latency > a.MaxLatency {
		a.MaxLatency = s.Latency
	}
	a.latencies = append(a.latencies, s.Latency)
}

// Merge combines two aggregates (e.g. the same experiment run over several
// independently grown networks).
func (a *Aggregate) Merge(b Aggregate) {
	if b.N == 0 {
		return
	}
	total := a.N + b.N
	wa, wb := float64(a.N)/float64(total), float64(b.N)/float64(total)
	a.MeanLatency = a.MeanLatency*wa + b.MeanLatency*wb
	a.MeanCongestion = a.MeanCongestion*wa + b.MeanCongestion*wb
	a.MeanMessages = a.MeanMessages*wa + b.MeanMessages*wb
	a.MeanTuplesSent = a.MeanTuplesSent*wa + b.MeanTuplesSent*wb
	a.MeanPeersUnique = a.MeanPeersUnique*wa + b.MeanPeersUnique*wb
	a.MeanFailures = a.MeanFailures*wa + b.MeanFailures*wb
	a.MeanRecovered = a.MeanRecovered*wa + b.MeanRecovered*wb
	a.MeanFailovers = a.MeanFailovers*wa + b.MeanFailovers*wb
	a.MeanRetries = a.MeanRetries*wa + b.MeanRetries*wb
	a.PartialRate = a.PartialRate*wa + b.PartialRate*wb
	if b.MaxLatency > a.MaxLatency {
		a.MaxLatency = b.MaxLatency
	}
	a.N = total
	a.latencies = append(a.latencies, b.latencies...)
}

// PercentileLatency returns the q-quantile (q in [0,1]) of observed latencies.
func (a *Aggregate) PercentileLatency(q float64) int {
	if len(a.latencies) == 0 {
		return 0
	}
	ls := make([]int, len(a.latencies))
	copy(ls, a.latencies)
	sort.Ints(ls)
	idx := int(q * float64(len(ls)-1))
	return ls[idx]
}

// String renders the aggregate in the format used by the benchmark tables.
func (a *Aggregate) String() string {
	return fmt.Sprintf("n=%d latency=%.1f (max %d) congestion=%.1f tuples=%.1f",
		a.N, a.MeanLatency, a.MaxLatency, a.MeanCongestion, a.MeanTuplesSent)
}
