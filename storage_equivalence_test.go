// Cross-engine storage equivalence: the scan baseline and the R-tree engine
// must be observationally indistinguishable. For seeded random overlays,
// every query family (top-k, skyline, diversification, kNN), every ripple
// setting and every runtime (structural engine, actor cluster, TCP
// deployment), the two engines must return byte-identical replies, identical
// cost accounting, and identical canonical hop trees — and under replication
// with injected faults they must recover the very same subtrees. This is the
// property that makes `-storage=rtree` safe to flip on in production: it can
// only change how fast local steps run, never what they compute.
package ripple_test

import (
	"math"
	"reflect"
	"testing"
	"time"

	"ripple/internal/async"
	"ripple/internal/core"
	"ripple/internal/dataset"
	"ripple/internal/diversify"
	"ripple/internal/faults"
	"ripple/internal/geom"
	"ripple/internal/knn"
	"ripple/internal/midas"
	"ripple/internal/netpeer"
	"ripple/internal/overlay"
	"ripple/internal/skyline"
	"ripple/internal/storage"
	"ripple/internal/topk"
	"ripple/internal/trace"
)

// storageNet grows a seeded random overlay whose peers build R-tree stores
// over their zone shares; the scan arm of each comparison hides those stores
// behind the engine-level lens (core.Options / ClusterOptions / netpeer
// Options with Storage = KindScan).
func storageNet(seed int64) *midas.Network {
	n := midas.Build(24, midas.Options{Dims: 3, Seed: seed, Storage: storage.KindRTree})
	overlay.Load(n, dataset.Uniform(900, 3, seed+100))
	return n
}

// storageCase is one query family: its processor for the in-process runtimes
// and its encoded wire form for the TCP runtime.
type storageCase struct {
	name   string
	proc   core.Processor
	params []byte
}

func storageCases(t *testing.T) []storageCase {
	t.Helper()
	center := geom.Point{0.4, 0.6, 0.3}
	topkParams, err := (topk.WireCodec{}).EncodeParams(topk.UniformLinear(3), 5)
	if err != nil {
		t.Fatal(err)
	}
	skyParams, err := (skyline.WireCodec{}).EncodeParams(nil)
	if err != nil {
		t.Fatal(err)
	}
	divQ := diversify.NewQuery(center, 0.5)
	divParams, err := (diversify.WireCodec{}).EncodeParams(divQ, nil, nil, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	knnParams, err := (knn.WireCodec{}).EncodeParams(center, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	return []storageCase{
		{"topk", &topk.Processor{F: topk.UniformLinear(3), K: 5}, topkParams},
		{"skyline", &skyline.Processor{}, skyParams},
		{"diversify", &diversify.Processor{Query: divQ, Tau0: math.Inf(1)}, divParams},
		{"knn", &knn.Processor{Center: center, K: 5}, knnParams},
	}
}

// tcpStorage runs one traced query over a loopback deployment pinned to the
// given storage engine and replication factor.
func tcpStorage(t *testing.T, n *midas.Network, initID, qtype string, params []byte, r int, kind storage.Kind, factor int, inj *faults.Injector) *netpeer.QueryResult {
	t.Helper()
	opts := netpeer.Options{Logf: func(string, ...interface{}) {}, Storage: kind, Replication: factor, Faults: inj}
	if inj.Enabled() {
		opts.Retry = netpeer.RetryPolicy{MaxRetries: 0, BackoffBase: time.Millisecond, BackoffMax: time.Millisecond}
	}
	servers, addrs, err := netpeer.DeployOpts(n, opts,
		topk.WireCodec{}, skyline.WireCodec{}, diversify.WireCodec{}, knn.WireCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	res, err := netpeer.QueryTraced(addrs[initID], qtype, params, 3, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStorageEngineEquivalenceAcrossRuntimes: unreplicated (R=1) seeded
// overlays; for each query family and ripple setting, scan and rtree arms of
// all three runtimes must agree byte for byte, and every runtime's canonical
// tree must match the engine's.
func TestStorageEngineEquivalenceAcrossRuntimes(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		n := storageNet(seed)
		init := n.Peers()[5]
		for _, tc := range storageCases(t) {
			scanCluster := async.NewClusterOpts(n, tc.proc, async.ClusterOptions{Storage: storage.KindScan})
			rtreeCluster := async.NewClusterOpts(n, tc.proc, async.ClusterOptions{Storage: storage.KindRTree})
			for _, r := range []int{0, 2, 1 << 20} {
				engScan := core.RunOpts(init, tc.proc, r, core.Options{Trace: true, Storage: storage.KindScan})
				engRTree := core.RunOpts(init, tc.proc, r, core.Options{Trace: true, Storage: storage.KindRTree})
				if !reflect.DeepEqual(engRTree.Answers, engScan.Answers) {
					t.Fatalf("seed %d %s r=%d: engine answers differ between engines", seed, tc.name, r)
				}
				if engRTree.Stats.String() != engScan.Stats.String() {
					t.Fatalf("seed %d %s r=%d: engine costs differ:\nscan:  %s\nrtree: %s",
						seed, tc.name, r, engScan.Stats.String(), engRTree.Stats.String())
				}
				want := engScan.Trace.Canonical()
				if got := engRTree.Trace.Canonical(); got != want {
					t.Fatalf("seed %d %s r=%d: engine hop trees differ:\nscan:  %s\nrtree: %s", seed, tc.name, r, want, got)
				}

				actScan := scanCluster.RunTraced(init.ID(), r)
				actRTree := rtreeCluster.RunTraced(init.ID(), r)
				if !reflect.DeepEqual(sortedAnswerIDs(actRTree.Answers), sortedAnswerIDs(actScan.Answers)) {
					t.Fatalf("seed %d %s r=%d: actor answers differ between engines", seed, tc.name, r)
				}
				if !reflect.DeepEqual(sortedAnswerIDs(actScan.Answers), sortedAnswerIDs(engScan.Answers)) {
					t.Fatalf("seed %d %s r=%d: actor answers differ from engine", seed, tc.name, r)
				}
				for arm, tr := range map[string]*trace.Tree{"scan": actScan.Trace, "rtree": actRTree.Trace} {
					if got := tr.Canonical(); got != want {
						t.Fatalf("seed %d %s r=%d: actor/%s hop tree differs from engine:\nengine: %s\nactor:  %s",
							seed, tc.name, r, arm, want, got)
					}
				}

				tcpScan := tcpStorage(t, n, init.ID(), tc.name, tc.params, r, storage.KindScan, 1, nil)
				tcpRTree := tcpStorage(t, n, init.ID(), tc.name, tc.params, r, storage.KindRTree, 1, nil)
				if !reflect.DeepEqual(tcpRTree.Answers, tcpScan.Answers) {
					t.Fatalf("seed %d %s r=%d: tcp answers differ between engines", seed, tc.name, r)
				}
				if !reflect.DeepEqual(sortedAnswerIDs(tcpScan.Answers), sortedAnswerIDs(engScan.Answers)) {
					t.Fatalf("seed %d %s r=%d: tcp answers differ from engine", seed, tc.name, r)
				}
				for arm, tr := range map[string]*trace.Tree{"scan": tcpScan.Trace, "rtree": tcpRTree.Trace} {
					if got := tr.Canonical(); got != want {
						t.Fatalf("seed %d %s r=%d: tcp/%s hop tree differs from engine:\nengine: %s\ntcp:    %s",
							seed, tc.name, r, arm, want, got)
					}
				}
			}
			scanCluster.Close()
			rtreeCluster.Close()
		}
	}
}

// TestStorageEngineEquivalenceUnderRecovery: R=2 with injected link faults —
// replica failover must recover the same subtrees and leave the same residual
// failed regions no matter which engine serves the shares (replica shares are
// indexed too, so this exercises the R-tree on the failover path).
func TestStorageEngineEquivalenceUnderRecovery(t *testing.T) {
	n := storageNet(3)
	init := n.Peers()[5]
	inj := faults.New(faults.Config{Seed: 3, DropRate: 0.25})
	rm := overlay.BuildReplicas(n, 2)
	proc := &knn.Processor{Center: geom.Point{0.4, 0.6, 0.3}, K: 5}
	params, err := (knn.WireCodec{}).EncodeParams(proc.Center, proc.K, nil)
	if err != nil {
		t.Fatal(err)
	}

	recovered := 0
	for _, r := range []int{0, 1 << 20} {
		engScan := core.RunOpts(init, proc, r, core.Options{Trace: true, Faults: inj, Replicas: rm, Storage: storage.KindScan})
		engRTree := core.RunOpts(init, proc, r, core.Options{Trace: true, Faults: inj, Replicas: rm, Storage: storage.KindRTree})
		recovered += engScan.Stats.Recovered
		if !reflect.DeepEqual(engRTree.Answers, engScan.Answers) {
			t.Fatalf("r=%d: recovered answers differ between engines", r)
		}
		if engRTree.Stats.String() != engScan.Stats.String() {
			t.Fatalf("r=%d: recovery accounting differs:\nscan:  %s\nrtree: %s", r, engScan.Stats.String(), engRTree.Stats.String())
		}
		want := engScan.Trace.Canonical()
		if got := engRTree.Trace.Canonical(); got != want {
			t.Fatalf("r=%d: recovery hop trees differ:\nscan:  %s\nrtree: %s", r, want, got)
		}
		if !reflect.DeepEqual(regionStrings(engRTree.FailedRegions), regionStrings(engScan.FailedRegions)) {
			t.Fatalf("r=%d: residual failed regions differ between engines", r)
		}

		tcp := tcpStorage(t, n, init.ID(), "knn", params, r, storage.KindRTree, 2, inj)
		if got := tcp.Trace.Canonical(); got != want {
			t.Fatalf("r=%d: tcp rtree tree differs under recovery:\nengine: %s\ntcp:    %s", r, want, got)
		}
		if !reflect.DeepEqual(sortedAnswerIDs(tcp.Answers), sortedAnswerIDs(engScan.Answers)) {
			t.Fatalf("r=%d: tcp rtree recovered answers differ from engine", r)
		}
		if !reflect.DeepEqual(regionStrings(tcp.FailedRegions), regionStrings(engScan.FailedRegions)) {
			t.Fatalf("r=%d: tcp residual failed regions differ from engine", r)
		}
	}
	if recovered == 0 {
		t.Fatal("fault seed produced no recovered subtrees; test is vacuous")
	}
}
